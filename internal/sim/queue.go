package sim

// Queue is an unbounded typed FIFO connecting simulated processes. Pushes
// never block; Pop blocks the caller until an item is available. It is the
// workhorse for modeling hardware queues (doorbells, NIC receive rings).
//
// Storage is a rewinding ring: items live in buf[head:], and draining the
// queue rewinds head to the front so steady-state traffic reuses the same
// backing array. Together with the type parameter (no interface{} boxing)
// a warm push/pop cycle does not allocate.
type Queue[T any] struct {
	eng   *Engine
	buf   []T
	head  int
	avail *Signal
	svc   *service[T]
}

// NewQueue returns an empty queue bound to e.
func NewQueue[T any](e *Engine) *Queue[T] {
	return &Queue[T]{eng: e, avail: NewSignal(e)}
}

// Push appends v and wakes the consumer if it is idle: the serving
// machine's pump event when one is bound (see Serve), otherwise one
// process waiting in Pop. It may be called from a process or from a raw
// engine event (e.g. a packet-delivery callback).
func (q *Queue[T]) Push(v T) {
	q.buf = append(q.buf, v)
	if q.svc != nil {
		q.svc.notify()
		return
	}
	q.avail.Signal()
}

// take removes and returns the oldest item; the queue must be non-empty.
func (q *Queue[T]) take() T {
	v := q.buf[q.head]
	var zero T
	q.buf[q.head] = zero // drop the reference for the GC
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return v
}

// Pop removes and returns the oldest item, parking the caller until one is
// available.
func (q *Queue[T]) Pop(p *Proc) T {
	for q.Len() == 0 {
		q.avail.Wait(p)
	}
	return q.take()
}

// PopTimeout is Pop with a deadline; ok reports whether an item arrived in
// time.
func (q *Queue[T]) PopTimeout(p *Proc, d Duration) (v T, ok bool) {
	deadline := q.eng.now.Add(d)
	for q.Len() == 0 {
		remaining := deadline.Sub(q.eng.now)
		if remaining <= 0 {
			return v, false
		}
		if !q.avail.WaitTimeout(p, remaining) {
			return v, false
		}
	}
	return q.take(), true
}

// TryPop removes and returns the oldest item without blocking.
func (q *Queue[T]) TryPop() (v T, ok bool) {
	if q.Len() == 0 {
		return v, false
	}
	return q.take(), true
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return len(q.buf) - q.head }
