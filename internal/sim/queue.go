package sim

// Queue is an unbounded FIFO connecting simulated processes. Pushes never
// block; Pop blocks the caller until an item is available. It is the
// workhorse for modeling hardware queues (doorbells, NIC receive rings).
type Queue struct {
	eng   *Engine
	items []interface{}
	avail *Signal
}

// NewQueue returns an empty queue bound to e.
func NewQueue(e *Engine) *Queue {
	return &Queue{eng: e, avail: NewSignal(e)}
}

// Push appends v and wakes one waiting consumer. It may be called from a
// process or from a raw engine event (e.g. a packet-delivery callback).
func (q *Queue) Push(v interface{}) {
	q.items = append(q.items, v)
	q.avail.Signal()
}

// Pop removes and returns the oldest item, parking the caller until one is
// available.
func (q *Queue) Pop(p *Proc) interface{} {
	for len(q.items) == 0 {
		q.avail.Wait(p)
	}
	v := q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	return v
}

// PopTimeout is Pop with a deadline; ok reports whether an item arrived in
// time.
func (q *Queue) PopTimeout(p *Proc, d Duration) (v interface{}, ok bool) {
	deadline := q.eng.now.Add(d)
	for len(q.items) == 0 {
		remaining := deadline.Sub(q.eng.now)
		if remaining <= 0 {
			return nil, false
		}
		if !q.avail.WaitTimeout(p, remaining) {
			return nil, false
		}
	}
	v = q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	return v, true
}

// TryPop removes and returns the oldest item without blocking.
func (q *Queue) TryPop() (v interface{}, ok bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	v = q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	return v, true
}

// Len reports the number of queued items.
func (q *Queue) Len() int { return len(q.items) }
