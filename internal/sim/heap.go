package sim

// event is a scheduled engine action. Events fire in (at, seq) order so
// that two events scheduled for the same instant run in schedule order.
//
// Exactly one behaviour applies, discriminated without interface boxing:
//
//   - begin != nil: start process p (its goroutine is launched lazily at
//     dispatch, and control transfers to it)
//   - p != nil:     resume process p (a wake scheduled by Sleep or by a
//     Signal/Queue/Resource waker)
//   - otherwise:    run the plain callback fn
//
// Wake and start events carry the target process directly instead of a
// closure, which removes the per-yield allocation the old
// `After(0, p.wake)` pattern paid on every blocking primitive.
//
// Continuation events (svc != nil) are the state-machine analogue of a
// wake: they resume a queue-bound Machine at state pc without any
// goroutine handoff (see actor.go). Like wakes, they are closure-free.
type event struct {
	at    Time
	seq   uint64
	fn    func()
	p     *Proc
	begin func(*Proc)
	svc   stepper
	pc    int

	// tm, when non-nil, makes the event cancellable: the heap keeps tm.i
	// pointing at the event's current slot so cancelTimer can remove it
	// outright (see Engine.atTimer). Removal beats tombstoning here
	// because abandoned timeouts otherwise pile up for their full
	// duration and deepen every sift in the meantime.
	tm *timer
}

// eventQueue is a 4-ary min-heap of events ordered by (at, seq). Events are
// stored by value: scheduling never heap-allocates, and dispatch order is
// identical to any other stable priority queue over the same keys because
// (at, seq) is a total order. The wider node fan-out halves the tree depth
// of the old binary container/heap and removes its interface{} boxing.
type eventQueue struct {
	a []event
	// hw is the deepest the queue has ever been — the simulation's event
	// backlog high-water mark, surfaced through the metrics layer.
	hw int
}

func evBefore(x, y *event) bool {
	return x.at < y.at || (x.at == y.at && x.seq < y.seq)
}

func (q *eventQueue) len() int { return len(q.a) }

// push inserts ev, sifting parents down rather than swapping so each level
// costs one copy instead of three.
func (q *eventQueue) push(ev event) {
	a := append(q.a, ev)
	if len(a) > q.hw {
		q.hw = len(a)
	}
	i := len(a) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !evBefore(&ev, &a[parent]) {
			break
		}
		a[i] = a[parent]
		if t := a[i].tm; t != nil {
			t.i = i
		}
		i = parent
	}
	a[i] = ev
	if t := ev.tm; t != nil {
		t.i = i
	}
	q.a = a
}

// pop removes and returns the earliest event.
func (q *eventQueue) pop() event {
	a := q.a
	top := a[0]
	n := len(a) - 1
	last := a[n]
	a[n] = event{} // drop closure/proc references for the GC
	a = a[:n]
	q.a = a
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if evBefore(&a[j], &a[m]) {
					m = j
				}
			}
			if !evBefore(&a[m], &last) {
				break
			}
			a[i] = a[m]
			if t := a[i].tm; t != nil {
				t.i = i
			}
			i = m
		}
		a[i] = last
		if t := last.tm; t != nil {
			t.i = i
		}
	}
	return top
}

// removeAt deletes the event at heap index i, restoring the heap
// property. Dispatch order of the remaining events is untouched: pops
// select the (at, seq) minimum, which the internal layout cannot change.
func (q *eventQueue) removeAt(i int) {
	a := q.a
	n := len(a) - 1
	last := a[n]
	a[n] = event{}
	q.a = a[:n]
	a = q.a
	if i == n {
		return
	}
	// Re-seat `last` at the vacated slot: sift up if it beats the
	// parent, otherwise sift down.
	for i > 0 {
		parent := (i - 1) >> 2
		if !evBefore(&last, &a[parent]) {
			break
		}
		a[i] = a[parent]
		if t := a[i].tm; t != nil {
			t.i = i
		}
		i = parent
	}
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if evBefore(&a[j], &a[m]) {
				m = j
			}
		}
		if !evBefore(&a[m], &last) {
			break
		}
		a[i] = a[m]
		if t := a[i].tm; t != nil {
			t.i = i
		}
		i = m
	}
	a[i] = last
	if t := last.tm; t != nil {
		t.i = i
	}
}
