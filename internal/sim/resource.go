package sim

import "fmt"

// Resource models a serially-reusable unit of hardware (a bus, a DMA
// engine, a link transmitter): requests are served FIFO, one at a time.
// Acquire blocks until the resource is free; the holder releases it after
// modeling its occupancy with Sleep.
type Resource struct {
	eng    *Engine
	busy   bool
	queue  []*Proc
	holder *Proc
}

// NewResource returns an idle resource bound to e.
func NewResource(e *Engine) *Resource { return &Resource{eng: e} }

// Acquire blocks the caller until it holds the resource.
func (r *Resource) Acquire(p *Proc) {
	if r.busy {
		r.queue = append(r.queue, p)
		p.parkBlocked()
		// Woken by Release, which has already transferred ownership.
		return
	}
	r.busy = true
	r.holder = p
}

// Release frees the resource and hands it to the next waiter, if any.
func (r *Resource) Release(p *Proc) {
	if !r.busy || r.holder != p {
		panic(fmt.Sprintf("sim: %q releasing resource it does not hold", p.name))
	}
	if len(r.queue) > 0 {
		next := r.queue[0]
		r.queue = r.queue[1:]
		r.holder = next
		next.scheduleWake()
		return
	}
	r.busy = false
	r.holder = nil
}

// Use acquires the resource, occupies it for d, and releases it.
func (r *Resource) Use(p *Proc, d Duration) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release(p)
}

// Busy reports whether the resource is currently held.
func (r *Resource) Busy() bool { return r.busy }

// QueueLen reports the number of processes waiting to acquire.
func (r *Resource) QueueLen() int { return len(r.queue) }

// Pipe models a serialized transmitter without requiring the sender to be
// a process: Occupy reserves the next free slot of length d and returns the
// instant the slot ends. It is how links model bandwidth serialization for
// fire-and-forget packet sends scheduled from engine events.
type Pipe struct {
	eng  *Engine
	free Time // first instant the pipe is idle
}

// NewPipe returns an idle pipe bound to e.
func NewPipe(e *Engine) *Pipe { return &Pipe{eng: e} }

// Occupy reserves d of pipe time starting no earlier than now and returns
// the completion instant.
func (pp *Pipe) Occupy(d Duration) Time {
	return pp.OccupyFrom(pp.eng.now, d)
}

// OccupyFrom reserves d of pipe time starting no earlier than earliest and
// returns the completion instant. It models downstream stages whose input
// arrives in the future (e.g. a switch output port).
func (pp *Pipe) OccupyFrom(earliest Time, d Duration) Time {
	start := earliest
	if pp.free > start {
		start = pp.free
	}
	end := start.Add(d)
	pp.free = end
	return end
}

// FreeAt reports the first instant the pipe is idle.
func (pp *Pipe) FreeAt() Time { return pp.free }
