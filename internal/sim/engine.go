package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// event is a scheduled callback. Events fire in (at, seq) order so that two
// events scheduled for the same instant run in schedule order.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation engine. It owns the virtual clock,
// the event queue, and the set of live processes. An Engine is not safe for
// use from multiple goroutines except through the process-handshake
// mechanism it manages itself.
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64
	rng    *rand.Rand

	// park receives a token whenever the currently running process yields
	// control back to the event loop.
	park chan struct{}

	live    int // number of spawned processes that have not finished
	blocked int // processes parked on a Signal/Queue/Resource (no wake event pending)

	stopped bool
	tracer  Tracer
}

// Tracer receives a line for every traced simulation event. A nil tracer
// disables tracing.
type Tracer interface {
	Trace(at Time, what string)
}

// NewEngine returns an engine with the virtual clock at zero. The seed
// drives every source of randomness in the simulation (e.g. packet-loss
// injection); runs with equal seeds are identical.
func NewEngine(seed int64) *Engine {
	return &Engine{
		rng:  rand.New(rand.NewSource(seed)),
		park: make(chan struct{}),
	}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// SetTracer installs tr as the engine's tracer. Pass nil to disable.
func (e *Engine) SetTracer(tr Tracer) { e.tracer = tr }

// Tracef emits a formatted trace line if a tracer is installed.
func (e *Engine) Tracef(format string, args ...interface{}) {
	if e.tracer != nil {
		e.tracer.Trace(e.now, fmt.Sprintf(format, args...))
	}
}

// At schedules fn to run at instant t. Scheduling in the past panics: it
// would silently reorder causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d from now.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now.Add(d), fn)
}

// Stop makes Run return after the current event completes. Pending events
// are discarded.
func (e *Engine) Stop() { e.stopped = true }

// Run drives the event loop until no events remain, Stop is called, or a
// deadlock is detected. It returns an error if live processes remain
// blocked with an empty event queue (a deadlock: nobody can ever wake
// them), which is almost always a bug in the simulated protocol.
func (e *Engine) Run() error {
	for len(e.events) > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		ev.fn()
	}
	if !e.stopped && e.blocked > 0 {
		return fmt.Errorf("sim: deadlock at %v: %d process(es) blocked with no pending events", e.now, e.blocked)
	}
	return nil
}

// MustRun is Run, panicking on deadlock. Benchmarks use it so that protocol
// bugs fail loudly.
func (e *Engine) MustRun() {
	if err := e.Run(); err != nil {
		panic(err)
	}
}
