package sim

import (
	"fmt"
	"math/rand"
)

// Engine is a discrete-event simulation engine. It owns the virtual clock,
// the event queue, and the set of live processes. An Engine is not safe for
// use from multiple goroutines except through the process-handshake
// mechanism it manages itself; run independent simulations on independent
// engines (they share nothing, so engines may run in parallel with each
// other).
type Engine struct {
	now    Time
	events eventQueue
	seq    uint64
	rng    *rand.Rand

	// toMain receives a token when the event queue drains (or Stop fires)
	// while a process goroutine holds control, returning control to Run.
	toMain chan struct{}

	live    int // number of spawned processes that have not finished
	blocked int // processes parked on a Signal/Queue/Resource (no wake event pending)
	parked  int // processes (daemons included) parked with no wake pending

	// procs registers every spawned process so Shutdown can unwind the
	// ones still parked and CheckLeaks can name them. Dead entries are
	// compacted amortizedly on registration.
	procs []*Proc

	// idleWorkers holds goroutines whose process function has returned,
	// parked for reuse by a later Spawn: spawn-heavy paths (completion
	// notify handlers) stop paying goroutine creation. Invisible to the
	// simulation — reuse changes no event, time, or sequence number.
	idleWorkers []*worker

	// killAck serializes Shutdown: each killed goroutine sends one token
	// as it exits, so teardown is synchronous and leak-free.
	killAck chan struct{}

	// dispatched counts events popped and executed, for the metrics layer.
	dispatched uint64

	stopped  bool
	shutdown bool
	tracer   Tracer
}

// Tracer receives a line for every traced simulation event. A nil tracer
// disables tracing.
type Tracer interface {
	Trace(at Time, what string)
}

// NewEngine returns an engine with the virtual clock at zero. The seed
// drives every source of randomness in the simulation (e.g. packet-loss
// injection); runs with equal seeds are identical.
func NewEngine(seed int64) *Engine {
	return &Engine{
		rng:     rand.New(rand.NewSource(seed)),
		toMain:  make(chan struct{}, 1),
		killAck: make(chan struct{}),
		events:  eventQueue{a: make([]event, 0, 256)},
	}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// SetTracer installs tr as the engine's tracer. Pass nil to disable.
func (e *Engine) SetTracer(tr Tracer) { e.tracer = tr }

// Tracing reports whether a tracer is installed. Hot paths with expensive
// trace arguments should check it before building them, since Tracef's
// variadic arguments are materialized at the call site even when tracing
// is off.
func (e *Engine) Tracing() bool { return e.tracer != nil }

// Tracef emits a formatted trace line if a tracer is installed. The format
// is not evaluated when tracing is off.
func (e *Engine) Tracef(format string, args ...interface{}) {
	if e.tracer != nil {
		e.tracer.Trace(e.now, fmt.Sprintf(format, args...))
	}
}

// SpanTracer is a Tracer that additionally accepts duration-carrying
// events — completed spans that started at `at` and ran for `dur` of
// virtual time, as opposed to the instantaneous events Trace records.
type SpanTracer interface {
	Tracer
	TraceSpan(at Time, dur Duration, what string)
}

// TraceSpanf emits a completed span if the installed tracer understands
// durations; otherwise it is dropped (a plain Tracer has no place to put
// one). Like Tracef, the format is only evaluated when a tracer is
// installed, so callers should still guard with Tracing().
func (e *Engine) TraceSpanf(at Time, dur Duration, format string, args ...interface{}) {
	if st, ok := e.tracer.(SpanTracer); ok {
		st.TraceSpan(at, dur, fmt.Sprintf(format, args...))
	}
}

// At schedules fn to run at instant t. Scheduling in the past panics: it
// would silently reorder causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.events.push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d from now.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now.Add(d), fn)
}

// timer tracks a cancellable event's heap slot. i is maintained by the
// heap's sifts; -1 means fired, cancelled, or never scheduled.
type timer struct{ i int }

// atTimer schedules fn at instant t as a cancellable event: cancelTimer
// removes it from the heap before it fires. Timeout waits use this so an
// abandoned deadline (the common case — most waits are woken, not timed
// out) does not linger in the heap until its instant arrives, deepening
// every sift and stretching the simulated run out to the last deadline.
func (e *Engine) atTimer(t Time, fn func(), tm *timer) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling timer at %v before now %v", t, e.now))
	}
	e.seq++
	e.events.push(event{at: t, seq: e.seq, fn: fn, tm: tm})
}

// cancelTimer removes a pending timer event. Cancelling an already fired
// (or cancelled) timer is a no-op.
func (e *Engine) cancelTimer(tm *timer) {
	if tm.i >= 0 {
		e.events.removeAt(tm.i)
		tm.i = -1
	}
}

// atWake schedules process p to resume at instant t. It is the closure-free
// equivalent of At(t, p.wake).
func (e *Engine) atWake(t Time, p *Proc) {
	e.seq++
	e.events.push(event{at: t, seq: e.seq, p: p})
}

// atStart schedules process p to begin running fn at instant t.
func (e *Engine) atStart(t Time, p *Proc, fn func(*Proc)) {
	e.seq++
	e.events.push(event{at: t, seq: e.seq, p: p, begin: fn})
}

// Stop makes Run return after the current event completes. Pending events
// are discarded.
func (e *Engine) Stop() { e.stopped = true }

// dispatch advances the event loop in the calling goroutine until control
// leaves it: it runs plain events inline and, on a wake or start event,
// hands control directly to the target process. self is the process whose
// goroutine is executing dispatch (nil for the main goroutine and for dying
// processes).
//
// It returns true if the caller keeps control (a wake event targeted self,
// or — from main — the queue drained) and false if control was handed to
// another goroutine, in which case the caller must block (or, for a dying
// process, exit).
//
// This direct handoff is the engine's scheduling hot path: the old design
// parked every yielding process into a central loop (two channel
// rendezvous per control transfer); here the yielding goroutine runs the
// dispatcher itself, so a transfer costs one buffered-channel token, and a
// process that is the next runnable one (the single-process Sleep loop)
// costs none at all.
func (e *Engine) dispatch(self *Proc, fromMain bool) bool {
	for !e.stopped && len(e.events.a) > 0 {
		ev := e.events.pop()
		e.dispatched++
		e.now = ev.at
		if ev.tm != nil {
			ev.tm.i = -1 // fired: cancellation is a no-op from here on
		}
		if ev.svc != nil {
			// Continuation event: the machine segment runs inline, control
			// never leaves this goroutine (see actor.go).
			ev.svc.step(ev.pc)
			continue
		}
		if ev.p != nil {
			p := ev.p
			if ev.begin != nil {
				p.started = true
				e.startProc(p, ev.begin)
				return false
			}
			if p.dead {
				panic(fmt.Sprintf("sim: waking dead process %q", p.name))
			}
			if p == self {
				return true
			}
			p.resume <- struct{}{}
			return false
		}
		ev.fn()
	}
	if fromMain {
		return true
	}
	e.toMain <- struct{}{}
	return false
}

// Run drives the event loop until no events remain, Stop is called, or a
// deadlock is detected. It returns an error if live processes remain
// blocked with an empty event queue (a deadlock: nobody can ever wake
// them), which is almost always a bug in the simulated protocol.
func (e *Engine) Run() error {
	if !e.dispatch(nil, true) {
		<-e.toMain
	}
	if !e.stopped && e.blocked > 0 {
		return fmt.Errorf("sim: deadlock at %v: %d process(es) blocked with no pending events", e.now, e.blocked)
	}
	return nil
}

// EventsDispatched reports how many events the engine has executed.
func (e *Engine) EventsDispatched() uint64 { return e.dispatched }

// HeapHighWater reports the deepest the event queue has ever been.
func (e *Engine) HeapHighWater() int { return e.events.hw }

// MustRun is Run, panicking on deadlock. Benchmarks use it so that protocol
// bugs fail loudly.
func (e *Engine) MustRun() {
	if err := e.Run(); err != nil {
		panic(err)
	}
}

// CheckLeaks verifies that the simulation wound down cleanly after Run:
// no events pending and every live process parked on a Signal/Queue (a
// daemon loop or a blocked waiter) rather than runnable. A live process
// that is neither parked nor waiting on a scheduled wake is a goroutine
// the simulation lost track of. After Stop the check is vacuous (pending
// events and mid-sleep processes were deliberately abandoned), so it
// reports nil.
func (e *Engine) CheckLeaks() error {
	if e.stopped {
		return nil
	}
	if n := len(e.events.a); n > 0 {
		return fmt.Errorf("sim: %d event(s) still pending after Run", n)
	}
	if e.live == e.parked {
		return nil
	}
	var stray []string
	for _, p := range e.procs {
		if p != nil && !p.dead && !p.parked {
			stray = append(stray, p.name)
		}
	}
	return fmt.Errorf("sim: %d live process(es) not parked after Run: %v", e.live-e.parked, stray)
}

// Shutdown terminates the engine: every parked process goroutine and
// every pooled idle worker is unwound synchronously, so no goroutine
// outlives the simulation. The engine must be idle (between Runs); after
// Shutdown it must not be used again.
func (e *Engine) Shutdown() {
	if e.shutdown {
		return
	}
	e.shutdown = true
	e.stopped = true
	for _, p := range e.procs {
		if p == nil || p.dead {
			continue
		}
		if !p.started {
			// The begin event never dispatched (Stop discarded it): there
			// is no goroutine to unwind.
			p.dead = true
			e.live--
			continue
		}
		// The goroutine is blocked in <-p.resume (parked, or mid-sleep with
		// its wake event discarded by Stop). Wake it into the kill path and
		// wait for the goroutine to acknowledge its exit.
		p.killed = true
		p.resume <- struct{}{}
		<-e.killAck
	}
	e.procs = nil
	for _, w := range e.idleWorkers {
		w.killed = true
		w.wake <- struct{}{}
		<-e.killAck
	}
	e.idleWorkers = nil
}
