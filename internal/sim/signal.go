package sim

// waiter is one process parked on a Signal. The woken/cancelled flags
// guarantee exactly one wake per wait even when a broadcast and a timeout
// land on the same instant.
type waiter struct {
	p        *Proc
	woken    bool
	timedOut bool
	tm       timer // heap slot of the timeout event, for cancellation
}

// Signal is a broadcast/wake-one condition. Waiters park until another
// process (or an engine event) signals. Signals carry no data; pair them
// with shared state guarded by the run-to-block execution model (no locks
// are needed: only one process runs at a time).
type Signal struct {
	eng     *Engine
	waiters []*waiter
}

// NewSignal returns a Signal bound to e.
func NewSignal(e *Engine) *Signal { return &Signal{eng: e} }

// Wait parks the calling process until the next Signal or Broadcast.
func (s *Signal) Wait(p *Proc) {
	w := &waiter{p: p}
	s.waiters = append(s.waiters, w)
	p.parkBlocked()
}

// WaitTimeout parks the calling process until the next Signal/Broadcast or
// until d elapses. It reports false if the wait timed out. A wait that is
// signalled in time cancels its deadline event outright, so abandoned
// timeouts never accumulate in the heap (a simulation full of generous
// deadlines — every blocking VIPL call arms one — would otherwise carry
// thousands of dead events and run on to the last deadline).
func (s *Signal) WaitTimeout(p *Proc, d Duration) bool {
	w := &waiter{p: p}
	s.waiters = append(s.waiters, w)
	p.eng.atTimer(p.eng.now.Add(d), func() {
		if w.woken {
			// A same-instant Signal dispatched first (it marked w woken and
			// scheduled the wake); the deadline loses the tie.
			return
		}
		w.woken = true
		w.timedOut = true
		s.remove(w)
		p.scheduleWake()
	}, &w.tm)
	p.parkBlocked()
	if !w.timedOut {
		p.eng.cancelTimer(&w.tm)
	}
	return !w.timedOut
}

func (s *Signal) remove(w *waiter) {
	for i, x := range s.waiters {
		if x == w {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			return
		}
	}
}

// Signal wakes the longest-waiting process, if any. It reports whether a
// process was woken.
func (s *Signal) Signal() bool {
	for len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		if w.woken {
			continue
		}
		w.woken = true
		w.p.scheduleWake()
		return true
	}
	return false
}

// Broadcast wakes every waiting process in FIFO order.
func (s *Signal) Broadcast() {
	ws := s.waiters
	s.waiters = nil
	for _, w := range ws {
		if w.woken {
			continue
		}
		w.woken = true
		w.p.scheduleWake()
	}
}

// Waiters reports the number of parked processes.
func (s *Signal) Waiters() int { return len(s.waiters) }
