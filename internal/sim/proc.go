package sim

import "fmt"

// Proc is a simulated process: a goroutine whose execution is interleaved
// with all other processes by the engine, one at a time. Inside a process
// function, time passes only through the blocking primitives (Sleep, Wait,
// queue operations); ordinary Go code executes in zero virtual time.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	dead   bool
	daemon bool
}

// SetDaemon marks the process as a daemon: an engine loop that blocks
// forever waiting for work (a NIC engine, a server accept loop). Blocked
// daemons do not count toward deadlock detection, so Run can return once
// all non-daemon work is finished.
func (p *Proc) SetDaemon(on bool) { p.daemon = on }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the process's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

func newProc(e *Engine, name string) *Proc {
	// resume is buffered: at most one wake token is ever outstanding per
	// process (a process must yield before anything can wake it again), so
	// the waking goroutine never blocks on the handoff.
	return &Proc{eng: e, name: name, resume: make(chan struct{}, 1)}
}

// Spawn creates a process running fn and schedules it to start at the
// current virtual time. fn runs concurrently with the caller in virtual
// time but never in parallel in real time.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := newProc(e, name)
	e.live++
	e.atStart(e.now, p, fn)
	return p
}

// SpawnAfter is Spawn with the start delayed by d.
func (e *Engine) SpawnAfter(d Duration, name string, fn func(p *Proc)) *Proc {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	p := newProc(e, name)
	e.live++
	e.atStart(e.now.Add(d), p, fn)
	return p
}

// run is the body of the process goroutine. It is launched by dispatch when
// the start event fires, already holding control; when fn returns, the
// dying process dispatches onward, handing control to the next runnable
// process (or back to Run when the queue is empty).
func (p *Proc) run(fn func(*Proc)) {
	defer func() {
		p.dead = true
		p.eng.live--
		if r := recover(); r != nil {
			// Re-panic with the process identified; the unrecovered panic
			// takes the program down, so tests see the failure with a
			// coherent stack instead of a hung channel.
			panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, r))
		}
		p.eng.dispatch(nil, false)
	}()
	fn(p)
}

// yield returns control to the event loop by dispatching in place. The
// process must already have arranged for something to wake it (directly or
// via a scheduled event), otherwise it sleeps forever and Run reports a
// deadlock. If the next runnable event is this process's own wake, control
// never leaves the goroutine and no channel operation happens.
func (p *Proc) yield() {
	if p.eng.dispatch(p, false) {
		return
	}
	<-p.resume
}

// Sleep suspends the process for d of virtual time. Even a zero sleep is a
// scheduling point: other events at this instant run first, matching the
// "post then yield" semantics protocol code relies on.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v", d))
	}
	p.eng.atWake(p.eng.now.Add(d), p)
	p.yield()
}

// parkBlocked suspends the process with no wake-up scheduled; the waker is
// responsible for scheduling a wake via scheduleWake. The engine counts
// parked non-daemon processes to detect deadlock.
func (p *Proc) parkBlocked() {
	if !p.daemon {
		p.eng.blocked++
	}
	p.yield()
	if !p.daemon {
		p.eng.blocked--
	}
}

// scheduleWake schedules this process to resume at the current instant
// (after already-queued events). Used by Signal/Queue wakers.
func (p *Proc) scheduleWake() {
	p.eng.atWake(p.eng.now, p)
}
