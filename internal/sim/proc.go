package sim

import "fmt"

// Proc is a simulated process: a goroutine whose execution is interleaved
// with all other processes by the engine, one at a time. Inside a process
// function, time passes only through the blocking primitives (Sleep, Wait,
// queue operations); ordinary Go code executes in zero virtual time.
type Proc struct {
	eng     *Engine
	name    string
	resume  chan struct{}
	dead    bool
	daemon  bool
	started bool // begin event dispatched: a goroutine is executing fn
	parked  bool // blocked with no wake event pending (see parkBlocked)
	killed  bool // Shutdown marked it for unwinding
}

// SetDaemon marks the process as a daemon: an engine loop that blocks
// forever waiting for work (a NIC engine, a server accept loop). Blocked
// daemons do not count toward deadlock detection, so Run can return once
// all non-daemon work is finished.
func (p *Proc) SetDaemon(on bool) { p.daemon = on }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the process's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

func newProc(e *Engine, name string) *Proc {
	// resume is buffered: at most one wake token is ever outstanding per
	// process (a process must yield before anything can wake it again), so
	// the waking goroutine never blocks on the handoff.
	return &Proc{eng: e, name: name, resume: make(chan struct{}, 1)}
}

// register adds p to the engine's process registry, compacting dead
// entries in place when the slice is about to grow so the registry stays
// proportional to the number of live processes.
func (e *Engine) register(p *Proc) {
	if len(e.procs) > 0 && len(e.procs) == cap(e.procs) {
		live := e.procs[:0]
		for _, q := range e.procs {
			if !q.dead {
				live = append(live, q)
			}
		}
		for i := len(live); i < len(e.procs); i++ {
			e.procs[i] = nil
		}
		e.procs = live
	}
	e.procs = append(e.procs, p)
}

// Spawn creates a process running fn and schedules it to start at the
// current virtual time. fn runs concurrently with the caller in virtual
// time but never in parallel in real time.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := newProc(e, name)
	e.live++
	e.register(p)
	e.atStart(e.now, p, fn)
	return p
}

// SpawnAfter is Spawn with the start delayed by d.
func (e *Engine) SpawnAfter(d Duration, name string, fn func(p *Proc)) *Proc {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	p := newProc(e, name)
	e.live++
	e.register(p)
	e.atStart(e.now.Add(d), p, fn)
	return p
}

// killSignal is the panic value yield raises when Shutdown unwinds a
// parked process; exec recognizes it and exits the goroutine quietly.
type killSignal struct{}

// worker is one pooled process goroutine. After its process function
// returns it parks on wake, ready to adopt the next spawned process
// without a fresh `go` statement.
type worker struct {
	eng    *Engine
	wake   chan struct{}
	p      *Proc
	fn     func(*Proc)
	killed bool
}

// startProc hands the begin event's process to a pooled worker goroutine,
// creating one on pool miss. Called from dispatch with control in hand;
// the worker takes over the engine immediately.
func (e *Engine) startProc(p *Proc, fn func(*Proc)) {
	if n := len(e.idleWorkers); n > 0 {
		w := e.idleWorkers[n-1]
		e.idleWorkers[n-1] = nil
		e.idleWorkers = e.idleWorkers[:n-1]
		w.p, w.fn = p, fn
		w.wake <- struct{}{}
		return
	}
	w := &worker{eng: e, wake: make(chan struct{}, 1), p: p, fn: fn}
	go w.loop()
}

// loop runs process bodies until the engine shuts the worker down.
func (w *worker) loop() {
	for {
		p, fn := w.p, w.fn
		w.p, w.fn = nil, nil
		if p.exec(fn) {
			w.eng.killAck <- struct{}{}
			return
		}
		// Park this goroutine for reuse BEFORE dispatching onward: after
		// the handoff another goroutine owns the engine and may pop the
		// idle-worker list to start the next spawn.
		w.eng.idleWorkers = append(w.eng.idleWorkers, w)
		w.eng.dispatch(nil, false)
		<-w.wake
		if w.killed {
			w.eng.killAck <- struct{}{}
			return
		}
	}
}

// exec is the body of one process execution: it runs fn and performs the
// death bookkeeping. It reports whether the process was unwound by
// Shutdown (in which case the caller exits without dispatching — the
// shutdown caller holds control).
func (p *Proc) exec(fn func(*Proc)) (killed bool) {
	defer func() {
		p.dead = true
		p.eng.live--
		r := recover()
		if r == nil {
			return
		}
		if _, ok := r.(killSignal); ok {
			killed = true
			return
		}
		// Re-panic with the process identified; the unrecovered panic
		// takes the program down, so tests see the failure with a
		// coherent stack instead of a hung channel.
		panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, r))
	}()
	fn(p)
	return false
}

// yield returns control to the event loop by dispatching in place. The
// process must already have arranged for something to wake it (directly or
// via a scheduled event), otherwise it sleeps forever and Run reports a
// deadlock. If the next runnable event is this process's own wake, control
// never leaves the goroutine and no channel operation happens.
func (p *Proc) yield() {
	if p.killed {
		panic(killSignal{})
	}
	if p.eng.dispatch(p, false) {
		return
	}
	<-p.resume
	if p.killed {
		panic(killSignal{})
	}
}

// Sleep suspends the process for d of virtual time. Even a zero sleep is a
// scheduling point: other events at this instant run first, matching the
// "post then yield" semantics protocol code relies on.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v", d))
	}
	p.eng.atWake(p.eng.now.Add(d), p)
	p.yield()
}

// parkBlocked suspends the process with no wake-up scheduled; the waker is
// responsible for scheduling a wake via scheduleWake. The engine counts
// parked non-daemon processes to detect deadlock, and all parked processes
// to verify teardown (see CheckLeaks).
func (p *Proc) parkBlocked() {
	if !p.daemon {
		p.eng.blocked++
	}
	p.parked = true
	p.eng.parked++
	p.yield()
	p.parked = false
	p.eng.parked--
	if !p.daemon {
		p.eng.blocked--
	}
}

// scheduleWake schedules this process to resume at the current instant
// (after already-queued events). Used by Signal/Queue wakers.
func (p *Proc) scheduleWake() {
	p.eng.atWake(p.eng.now, p)
}
