package sim

import "fmt"

// Proc is a simulated process: a goroutine whose execution is interleaved
// with all other processes by the engine, one at a time. Inside a process
// function, time passes only through the blocking primitives (Sleep, Wait,
// queue operations); ordinary Go code executes in zero virtual time.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	dead   bool
	daemon bool
}

// SetDaemon marks the process as a daemon: an engine loop that blocks
// forever waiting for work (a NIC engine, a server accept loop). Blocked
// daemons do not count toward deadlock detection, so Run can return once
// all non-daemon work is finished.
func (p *Proc) SetDaemon(on bool) { p.daemon = on }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the process's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Spawn creates a process running fn and schedules it to start at the
// current virtual time. fn runs concurrently with the caller in virtual
// time but never in parallel in real time.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan struct{})}
	e.live++
	e.After(0, func() { p.start(fn) })
	return p
}

// SpawnAfter is Spawn with the start delayed by d.
func (e *Engine) SpawnAfter(d Duration, name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan struct{})}
	e.live++
	e.After(d, func() { p.start(fn) })
	return p
}

func (p *Proc) start(fn func(*Proc)) {
	go func() {
		defer func() {
			p.dead = true
			p.eng.live--
			if r := recover(); r != nil {
				// Re-panic on the engine side so tests see the failure
				// with a coherent stack instead of a hung channel.
				p.eng.park <- struct{}{}
				panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, r))
			}
			p.eng.park <- struct{}{}
		}()
		fn(p)
	}()
	<-p.eng.park
}

// yield returns control to the event loop. The process must already have
// arranged for something to call p.wake() (directly or via a scheduled
// event), otherwise it sleeps forever and Run reports a deadlock.
func (p *Proc) yield() {
	p.eng.park <- struct{}{}
	<-p.resume
}

// wake transfers control to the process from inside an engine event.
func (p *Proc) wake() {
	if p.dead {
		panic(fmt.Sprintf("sim: waking dead process %q", p.name))
	}
	p.resume <- struct{}{}
	<-p.eng.park
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v", d))
	}
	if d == 0 {
		// Even a zero sleep is a scheduling point: other events at this
		// instant run first. This matches the "post then yield" semantics
		// protocol code relies on.
	}
	p.eng.After(d, p.wake)
	p.yield()
}

// park suspends the process with no wake-up scheduled; the waker is
// responsible for calling wake via an engine event. The engine counts
// parked non-daemon processes to detect deadlock.
func (p *Proc) parkBlocked() {
	if !p.daemon {
		p.eng.blocked++
	}
	p.yield()
	if !p.daemon {
		p.eng.blocked--
	}
}

// scheduleWake schedules this process to resume at the current instant
// (after already-queued events). Used by Signal/Queue wakers.
func (p *Proc) scheduleWake() {
	p.eng.After(0, p.wake)
}
