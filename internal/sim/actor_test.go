package sim

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// traceMachine is a Machine that logs every segment it runs with the
// virtual instant it ran at: Begin sleeps item%3, an odd item sleeps 2
// more before finishing, an even item falls through inline. The log is a
// complete observation of the machine's schedule, so equal logs mean the
// two drivers are observationally identical.
type traceMachine struct {
	e    *Engine
	item int
	log  []string
}

const (
	tmMid = iota
	tmFinish
)

func (m *traceMachine) Begin(item int) (Duration, int) {
	m.item = item
	m.log = append(m.log, fmt.Sprintf("%d begin %d", m.e.Now(), item))
	return Duration(item % 3), tmMid
}

func (m *traceMachine) Step(pc int) (Duration, int) {
	switch pc {
	case tmMid:
		m.log = append(m.log, fmt.Sprintf("%d mid %d", m.e.Now(), m.item))
		if m.item%2 == 1 {
			return 2, tmFinish // odd: a real sleep before finishing
		}
		return m.Step(tmFinish) // even: inline fall-through, no event
	case tmFinish:
		m.log = append(m.log, fmt.Sprintf("%d done %d", m.e.Now(), m.item))
		return 0, StepDone
	}
	panic("unexpected state")
}

// driveTraceMachine runs 50 pushes through the machine under one driver
// and returns the observation log, the final virtual time, and the
// dispatched-event count.
func driveTraceMachine(proc bool) ([]string, Time, uint64) {
	e := NewEngine(1)
	q := NewQueue[int](e)
	m := &traceMachine{e: e}
	if proc {
		e.Spawn("svc", func(p *Proc) {
			p.SetDaemon(true)
			q.ServeProc(p, m)
		})
	} else {
		// One inert anchor event sits exactly where the Spawn's start
		// event would, keeping sequence numbers aligned (the same trick
		// via.newNic uses).
		e.At(e.Now(), func() {})
		q.Serve(m)
	}
	for i := 0; i < 50; i++ {
		i := i
		e.At(Time(i*2), func() { q.Push(i) })
	}
	e.MustRun()
	return m.log, e.Now(), e.EventsDispatched()
}

// TestServeMatchesServeProc is the determinism contract of actor.go in
// miniature: the same machine, fed the same pushes, driven once as a
// goroutine process and once as an event-loop service, must produce the
// same observation log, finish at the same virtual instant, and dispatch
// the same number of engine events.
func TestServeMatchesServeProc(t *testing.T) {
	plog, pend, pev := driveTraceMachine(true)
	slog, send, sev := driveTraceMachine(false)
	if pend != send {
		t.Errorf("end time: proc %v, service %v", pend, send)
	}
	if pev != sev {
		t.Errorf("events dispatched: proc %d, service %d", pev, sev)
	}
	if len(plog) != len(slog) {
		t.Fatalf("log length: proc %d, service %d", len(plog), len(slog))
	}
	for i := range plog {
		if plog[i] != slog[i] {
			t.Errorf("log[%d]: proc %q, service %q", i, plog[i], slog[i])
		}
	}
}

// TestServeDrainsBacklog checks that binding a service to a non-empty
// queue consumes the backlog without any Push to wake it.
func TestServeDrainsBacklog(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e)
	var got []int
	q.Push(4)
	q.Push(6)
	q.Serve(&funcMachine{begin: func(v int) (Duration, int) {
		got = append(got, v)
		return 0, StepDone
	}})
	e.MustRun()
	if len(got) != 2 || got[0] != 4 || got[1] != 6 {
		t.Fatalf("backlog drained as %v", got)
	}
}

// TestServeSingleConsumer checks the one-consumer invariant.
func TestServeSingleConsumer(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e)
	m := &funcMachine{begin: func(int) (Duration, int) { return 0, StepDone }}
	q.Serve(m)
	defer func() {
		if recover() == nil {
			t.Fatal("second Serve did not panic")
		}
	}()
	q.Serve(m)
}

// funcMachine adapts a Begin func (and optional Step) to the Machine
// interface, for small tests.
type funcMachine struct {
	begin func(int) (Duration, int)
	step  func(int) (Duration, int)
}

func (m *funcMachine) Begin(v int) (Duration, int) { return m.begin(v) }
func (m *funcMachine) Step(pc int) (Duration, int) { return m.step(pc) }

// TestCheckLeaksPendingEvents checks the two CheckLeaks modes: pending
// events are a leak on a clean engine, and vacuously fine after Stop.
func TestCheckLeaksPendingEvents(t *testing.T) {
	e := NewEngine(1)
	e.After(5, func() {})
	if err := e.CheckLeaks(); err == nil {
		t.Error("pending event not reported")
	}
	e.Stop()
	if err := e.CheckLeaks(); err != nil {
		t.Errorf("stopped engine reported leak: %v", err)
	}
}

// TestCheckLeaksParkedDaemon checks that a daemon parked on an empty
// queue is not a leak — that is the normal end state of a served NIC.
func TestCheckLeaksParkedDaemon(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e)
	e.Spawn("daemon", func(p *Proc) {
		p.SetDaemon(true)
		for {
			q.Pop(p)
		}
	})
	q.Push(1)
	e.MustRun()
	if err := e.CheckLeaks(); err != nil {
		t.Errorf("parked daemon reported as leak: %v", err)
	}
	e.Shutdown()
}

// TestShutdownUnwindsGoroutines checks the teardown guarantee: after
// Shutdown, every process goroutine — parked daemons, pooled idle
// workers, and processes whose start event was discarded by Stop — is
// gone, so a long test run never accumulates dead simulations.
func TestShutdownUnwindsGoroutines(t *testing.T) {
	settle := func() int {
		n := runtime.NumGoroutine()
		for i := 0; i < 200; i++ {
			time.Sleep(time.Millisecond)
			if m := runtime.NumGoroutine(); m >= n {
				return m
			} else {
				n = m
			}
		}
		return n
	}
	before := settle()

	e := NewEngine(1)
	q := NewQueue[int](e)
	for i := 0; i < 8; i++ {
		e.Spawn(fmt.Sprintf("daemon%d", i), func(p *Proc) {
			p.SetDaemon(true)
			for {
				q.Pop(p)
			}
		})
	}
	// A finished process parks its goroutine in the idle-worker pool.
	e.Spawn("oneshot", func(p *Proc) { p.Sleep(1) })
	for i := 0; i < 4; i++ {
		q.Push(i)
	}
	e.MustRun()
	// A process spawned after Run whose begin event Stop discards.
	e.Spawn("unstarted", func(p *Proc) {})
	e.Stop()
	e.Shutdown()
	e.Shutdown() // idempotent

	after := settle()
	if after > before {
		t.Errorf("goroutines grew %d -> %d across engine lifecycle", before, after)
	}
}

// TestQueueSteadyStateZeroAlloc is the boxing guard for the generic
// queue: pushing and popping values through a warm Queue[T] must not
// allocate, where the old interface{} queue boxed every non-tiny value.
// The actor path gets the same guard: a full push -> pump -> Begin ->
// continuation -> Step cycle allocates nothing once the event heap is
// warm.
func TestQueueSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e)
	for i := 0; i < 64; i++ { // warm the ring
		q.Push(1 << 20)
		q.TryPop()
	}
	if a := testing.AllocsPerRun(200, func() {
		q.Push(1 << 20)
		q.TryPop()
	}); a != 0 {
		t.Errorf("bare queue push/pop allocates %.1f/op", a)
	}

	qs := NewQueue[int](e)
	qs.Serve(&funcMachine{
		begin: func(int) (Duration, int) { return 1, 7 },
		step:  func(int) (Duration, int) { return 0, StepDone },
	})
	q.Push(1 << 20) // keep q referenced
	q.TryPop()
	for i := 0; i < 64; i++ { // warm the event heap past this load
		qs.Push(1 << 20)
	}
	e.MustRun()
	if a := testing.AllocsPerRun(200, func() {
		qs.Push(1 << 20)
		e.MustRun()
	}); a != 0 {
		t.Errorf("actor push+step cycle allocates %.1f/op", a)
	}
}
