// Package sim implements a deterministic discrete-event simulation engine
// with process semantics.
//
// The engine advances a virtual clock over a priority queue of events.
// Simulated processes are goroutines that run strictly one at a time: a
// process executes until it blocks on a simulation primitive (Sleep, Signal,
// Queue, Resource), at which point control returns to the event loop. Ties
// in time are broken by schedule order, so a run is fully deterministic for
// a given seed.
//
// All times are virtual. Nothing in this package reads the wall clock.
package sim

import "fmt"

// Time is an instant on the virtual clock, in nanoseconds since the start
// of the simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Microseconds constructs a Duration from a (possibly fractional) count of
// microseconds. Cost-model parameters are naturally expressed in
// microseconds, matching the paper's reporting unit.
func Microseconds(us float64) Duration {
	return Duration(us * float64(Microsecond))
}

// Micros reports the duration as a floating-point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Seconds reports the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fus", d.Micros())
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// Micros reports the instant as a floating-point number of microseconds
// since simulation start.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from earlier to t.
func (t Time) Sub(earlier Time) Duration { return Duration(t - earlier) }

func (t Time) String() string { return Duration(t).String() }
