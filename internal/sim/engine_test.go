package sim

import (
	"fmt"
	"testing"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []string
	e.At(20, func() { got = append(got, "b") })
	e.At(10, func() { got = append(got, "a") })
	e.At(20, func() { got = append(got, "c") }) // same instant: schedule order
	e.At(30, func() { got = append(got, "d") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "[a b c d]"
	if fmt.Sprint(got) != want {
		t.Fatalf("order = %v, want %v", got, want)
	}
	if e.Now() != 30 {
		t.Fatalf("final time = %v, want 30ns", e.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestProcSleepInterleaving(t *testing.T) {
	e := NewEngine(1)
	var got []string
	log := func(p *Proc, s string) { got = append(got, fmt.Sprintf("%s@%d", s, p.Now())) }
	e.Spawn("a", func(p *Proc) {
		log(p, "a1")
		p.Sleep(10)
		log(p, "a2")
		p.Sleep(20)
		log(p, "a3")
	})
	e.Spawn("b", func(p *Proc) {
		log(p, "b1")
		p.Sleep(15)
		log(p, "b2")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "[a1@0 b1@0 a2@10 b2@15 a3@30]"
	if fmt.Sprint(got) != want {
		t.Fatalf("trace = %v, want %v", got, want)
	}
}

func TestZeroSleepIsSchedulingPoint(t *testing.T) {
	e := NewEngine(1)
	var got []string
	e.Spawn("a", func(p *Proc) {
		got = append(got, "a1")
		p.Sleep(0)
		got = append(got, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		got = append(got, "b1")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// b starts before a resumes from its zero-length sleep.
	want := "[a1 b1 a2]"
	if fmt.Sprint(got) != want {
		t.Fatalf("trace = %v, want %v", got, want)
	}
}

func TestSignalWakeOne(t *testing.T) {
	e := NewEngine(1)
	s := NewSignal(e)
	var got []string
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			s.Wait(p)
			got = append(got, fmt.Sprintf("w%d@%d", i, p.Now()))
		})
	}
	e.Spawn("sig", func(p *Proc) {
		p.Sleep(10)
		s.Signal()
		p.Sleep(10)
		s.Signal()
		p.Sleep(10)
		s.Signal()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "[w0@10 w1@20 w2@30]"
	if fmt.Sprint(got) != want {
		t.Fatalf("trace = %v, want %v", got, want)
	}
}

func TestSignalBroadcast(t *testing.T) {
	e := NewEngine(1)
	s := NewSignal(e)
	woken := 0
	for i := 0; i < 5; i++ {
		e.Spawn("w", func(p *Proc) {
			s.Wait(p)
			woken++
		})
	}
	e.Spawn("sig", func(p *Proc) {
		p.Sleep(5)
		s.Broadcast()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 5 {
		t.Fatalf("woken = %d, want 5", woken)
	}
}

func TestSignalWaitTimeout(t *testing.T) {
	e := NewEngine(1)
	s := NewSignal(e)
	var okEarly, okLate bool
	var tEarly, tLate Time
	e.Spawn("early", func(p *Proc) {
		okEarly = s.WaitTimeout(p, 100)
		tEarly = p.Now()
	})
	e.Spawn("late", func(p *Proc) {
		okLate = s.WaitTimeout(p, 5)
		tLate = p.Now()
	})
	e.Spawn("sig", func(p *Proc) {
		p.Sleep(10)
		s.Broadcast()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !okEarly || tEarly != 10 {
		t.Errorf("early: ok=%v at %v, want true at 10ns", okEarly, tEarly)
	}
	if okLate || tLate != 5 {
		t.Errorf("late: ok=%v at %v, want false at 5ns", okLate, tLate)
	}
	if s.Waiters() != 0 {
		t.Errorf("leftover waiters: %d", s.Waiters())
	}
}

func TestSignalTimeoutThenSignalDoesNotDoubleWake(t *testing.T) {
	e := NewEngine(1)
	s := NewSignal(e)
	wakes := 0
	e.Spawn("w", func(p *Proc) {
		s.WaitTimeout(p, 5)
		wakes++
		// Park again; the pending Signal at t=5 must not be consumed by
		// the timed-out waiter entry.
		s.Wait(p)
		wakes++
	})
	e.Spawn("sig", func(p *Proc) {
		p.Sleep(20)
		s.Signal()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wakes != 2 {
		t.Fatalf("wakes = %d, want 2", wakes)
	}
}

func TestQueueFIFO(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e)
	var got []int
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Pop(p))
		}
	})
	e.Spawn("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(10)
			q.Push(i)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1 2 3]" {
		t.Fatalf("got %v", got)
	}
}

func TestQueuePopTimeout(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e)
	var ok1, ok2 bool
	e.Spawn("c", func(p *Proc) {
		_, ok1 = q.PopTimeout(p, 5)
		_, ok2 = q.PopTimeout(p, 50)
	})
	e.Spawn("prod", func(p *Proc) {
		p.Sleep(20)
		q.Push(1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ok1 {
		t.Error("first pop should have timed out")
	}
	if !ok2 {
		t.Error("second pop should have succeeded")
	}
}

func TestQueueTryPop(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e)
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty queue succeeded")
	}
	q.Push(7)
	v, ok := q.TryPop()
	if !ok || v != 7 {
		t.Fatalf("TryPop = %v,%v", v, ok)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestResourceFIFOAndOccupancy(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e)
	var got []string
	for i := 0; i < 3; i++ {
		i := i
		e.SpawnAfter(Duration(i), fmt.Sprintf("p%d", i), func(p *Proc) {
			r.Acquire(p)
			p.Sleep(100)
			got = append(got, fmt.Sprintf("p%d@%d", i, p.Now()))
			r.Release(p)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "[p0@100 p1@200 p2@300]"
	if fmt.Sprint(got) != want {
		t.Fatalf("trace = %v, want %v", got, want)
	}
}

func TestResourceReleaseByNonHolderPanics(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e)
	e.Spawn("a", func(p *Proc) {
		r.Acquire(p)
		p.Sleep(10)
		r.Release(p)
	})
	e.Spawn("b", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("release by non-holder did not panic")
			}
		}()
		r.Release(p)
	})
	_ = e.Run()
}

func TestPipeSerialization(t *testing.T) {
	e := NewEngine(1)
	pp := NewPipe(e)
	var ends []Time
	e.At(0, func() { ends = append(ends, pp.Occupy(10)) })
	e.At(0, func() { ends = append(ends, pp.Occupy(10)) })
	e.At(25, func() { ends = append(ends, pp.Occupy(10)) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "[10ns 20ns 35ns]"
	if fmt.Sprint(ends) != want {
		t.Fatalf("ends = %v, want %v", ends, want)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine(1)
	s := NewSignal(e)
	e.Spawn("stuck", func(p *Proc) {
		s.Wait(p) // nobody will ever signal
	})
	if err := e.Run(); err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestDaemonDoesNotDeadlock(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e)
	served := 0
	e.Spawn("daemon", func(p *Proc) {
		p.SetDaemon(true)
		for {
			q.Pop(p)
			served++
		}
	})
	e.Spawn("client", func(p *Proc) {
		p.Sleep(10)
		q.Push(1)
		p.Sleep(10)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("daemon counted as deadlock: %v", err)
	}
	if served != 1 {
		t.Fatalf("served = %d", served)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.Spawn("loop", func(p *Proc) {
		for {
			p.Sleep(10)
			ran++
			if ran == 3 {
				e.Stop()
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 3 {
		t.Fatalf("ran = %d, want 3", ran)
	}
	if e.Now() != 30 {
		t.Fatalf("now = %v, want 30ns", e.Now())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		e := NewEngine(42)
		q := NewQueue[int](e)
		var got []string
		for i := 0; i < 4; i++ {
			i := i
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Sleep(Duration(e.Rand().Intn(100)))
				q.Push(i)
			})
		}
		e.Spawn("c", func(p *Proc) {
			for i := 0; i < 4; i++ {
				got = append(got, fmt.Sprintf("%v@%d", q.Pop(p), p.Now()))
			}
		})
		e.MustRun()
		return got
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}

func TestDurationFormatting(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{1500, "1.500us"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
	if Microseconds(2.5) != 2500 {
		t.Errorf("Microseconds(2.5) = %d", Microseconds(2.5))
	}
	if got := Microseconds(2.5).Micros(); got != 2.5 {
		t.Errorf("Micros() = %v", got)
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(100)
	if t0.Add(50) != 150 {
		t.Error("Add")
	}
	if Time(150).Sub(t0) != 50 {
		t.Error("Sub")
	}
	if Time(2*Microsecond).Micros() != 2 {
		t.Error("Micros")
	}
}

type sliceTracer struct{ lines []string }

func (s *sliceTracer) Trace(at Time, what string) {
	s.lines = append(s.lines, fmt.Sprintf("%v %s", at, what))
}

func TestTracer(t *testing.T) {
	e := NewEngine(1)
	tr := &sliceTracer{}
	e.SetTracer(tr)
	e.At(10, func() { e.Tracef("hello %d", 7) })
	e.MustRun()
	if len(tr.lines) != 1 || tr.lines[0] != "10ns hello 7" {
		t.Fatalf("trace lines = %v", tr.lines)
	}
	e.SetTracer(nil)
	e.Tracef("dropped") // must not panic
}

// panicStringer panics if it is ever formatted: it proves Tracef does not
// evaluate its format when no tracer is installed.
type panicStringer struct{}

func (panicStringer) String() string { panic("formatted with tracing off") }

func TestTracefDoesNotFormatWhenOff(t *testing.T) {
	e := NewEngine(1)
	e.Tracef("%v", panicStringer{})
}

// TestTracingGuardZeroAlloc pins the hot-path contract: call sites that
// check Tracing() first pay nothing — not even the variadic argument
// slice — when tracing is off.
func TestTracingGuardZeroAlloc(t *testing.T) {
	e := NewEngine(1)
	n := testing.AllocsPerRun(200, func() {
		if e.Tracing() {
			e.Tracef("pkt %d -> %d at %v", 1, 2, e.Now())
		}
	})
	if n != 0 {
		t.Fatalf("guarded trace call allocated %.1f per run with tracing off", n)
	}
}
