// Sockets: a bulk file transfer over the byte-stream layer (the
// sockets-over-VIA model of the paper's reference [17]). A sender streams
// a 2 MB "file" with a tiny length-prefixed framing protocol; the receiver
// verifies a rolling checksum. Run on M-VIA and cLAN to see how much of
// the providers' raw-bandwidth gap survives the copy-based byte-stream
// semantics.
package main

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"log"

	"vibe"
)

const fileSize = 2 << 20

func main() {
	for _, prov := range []string{"mvia", "clan"} {
		transfer(prov)
	}
}

func transfer(prov string) {
	sys, err := vibe.NewCluster(prov, 2, 21)
	if err != nil {
		log.Fatal(err)
	}

	sys.Go(0, "sender", func(ctx *vibe.Ctx) {
		conn, err := vibe.StreamDial(ctx, 1, "file", vibe.StreamDefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		// Frame: [size:8][payload...][crc:4]
		file := make([]byte, fileSize)
		for i := range file {
			file[i] = byte(i*7 + i>>9)
		}
		var hdr [8]byte
		binary.LittleEndian.PutUint64(hdr[:], uint64(len(file)))
		if _, err := conn.Write(ctx, hdr[:]); err != nil {
			log.Fatal(err)
		}
		start := ctx.Now()
		if _, err := conn.Write(ctx, file); err != nil {
			log.Fatal(err)
		}
		elapsed := ctx.Now().Sub(start)
		var sum [4]byte
		binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(file))
		if _, err := conn.Write(ctx, sum[:]); err != nil {
			log.Fatal(err)
		}
		if err := conn.Close(ctx); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sockets[%s]: sent %d KB in %v (%.1f MB/s at the writer, %d window stalls)\n",
			prov, fileSize/1024, elapsed,
			float64(fileSize)/elapsed.Seconds()/1e6, conn.WindowStalls)
	})

	sys.Go(1, "receiver", func(ctx *vibe.Ctx) {
		conn, err := vibe.StreamListen(ctx, "file", vibe.StreamDefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		readFull := func(p []byte) {
			got := 0
			for got < len(p) {
				n, err := conn.Read(ctx, p[got:])
				if err != nil && err != io.EOF {
					log.Fatal(err)
				}
				got += n
				if err == io.EOF && got < len(p) {
					log.Fatal("short stream")
				}
			}
		}
		var hdr [8]byte
		readFull(hdr[:])
		size := binary.LittleEndian.Uint64(hdr[:])
		body := make([]byte, size)
		readFull(body)
		var sum [4]byte
		readFull(sum[:])
		if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(sum[:]) {
			log.Fatal("checksum mismatch")
		}
		fmt.Printf("sockets[%s]: received %d KB, checksum verified\n", prov, size/1024)
	})

	sys.MustRun()
}
