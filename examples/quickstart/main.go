// Quickstart: bring up a two-host simulated cLAN cluster, connect a VI
// pair, exchange a message, and time a short ping-pong — the "hello
// world" of the VIA API.
package main

import (
	"fmt"
	"log"

	"vibe"
)

const (
	msgSize = 1024
	rounds  = 100
	timeout = 10 * vibe.Second
)

func main() {
	sys, err := vibe.NewCluster("clan", 2, 1)
	if err != nil {
		log.Fatal(err)
	}

	sys.Go(0, "client", func(ctx *vibe.Ctx) {
		nic := ctx.OpenNic()

		// 1. Create a VI (a communication endpoint with send and receive
		//    work queues).
		vi, err := nic.CreateVi(ctx, vibe.ViAttributes{}, nil, nil)
		if err != nil {
			log.Fatal(err)
		}

		// 2. Connect to the server's discriminator on host 1.
		if err := vi.ConnectRequest(ctx, 1, "hello", timeout); err != nil {
			log.Fatal(err)
		}

		// 3. Register memory. All VIA transfers move between registered
		//    regions; the handle proves the right to use them.
		buf := ctx.Malloc(msgSize)
		h, err := nic.RegisterMem(ctx, buf)
		if err != nil {
			log.Fatal(err)
		}
		buf.FillPattern(7)

		// 4. Ping-pong: pre-post the receive, post the send, poll both
		//    completions.
		start := ctx.Now()
		for i := 0; i < rounds; i++ {
			if err := vi.PostRecv(ctx, vibe.SimpleRecv(buf, h, msgSize)); err != nil {
				log.Fatal(err)
			}
			if err := vi.PostSend(ctx, vibe.SimpleSend(buf, h, msgSize)); err != nil {
				log.Fatal(err)
			}
			if _, err := vi.SendWaitPoll(ctx); err != nil {
				log.Fatal(err)
			}
			if _, err := vi.RecvWaitPoll(ctx); err != nil {
				log.Fatal(err)
			}
		}
		rtt := ctx.Now().Sub(start).Micros() / rounds
		fmt.Printf("quickstart: %d x %dB ping-pong on %q: %.2fus RTT (%.2fus one-way)\n",
			rounds, msgSize, "clan", rtt, rtt/2)

		// 5. Tear down.
		if err := vi.Disconnect(ctx); err != nil {
			log.Fatal(err)
		}
		if err := vi.Destroy(ctx); err != nil {
			log.Fatal(err)
		}
	})

	sys.Go(1, "server", func(ctx *vibe.Ctx) {
		nic := ctx.OpenNic()
		vi, err := nic.CreateVi(ctx, vibe.ViAttributes{}, nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		buf := ctx.Malloc(msgSize)
		h, err := nic.RegisterMem(ctx, buf)
		if err != nil {
			log.Fatal(err)
		}
		// Pre-post the first receive before accepting, so no message can
		// arrive descriptor-less.
		if err := vi.PostRecv(ctx, vibe.SimpleRecv(buf, h, msgSize)); err != nil {
			log.Fatal(err)
		}
		req, err := nic.ConnectWait(ctx, "hello", timeout)
		if err != nil {
			log.Fatal(err)
		}
		if err := req.Accept(ctx, vi); err != nil {
			log.Fatal(err)
		}
		for i := 0; i < rounds; i++ {
			if _, err := vi.RecvWaitPoll(ctx); err != nil {
				return // client disconnected
			}
			if i+1 < rounds {
				if err := vi.PostRecv(ctx, vibe.SimpleRecv(buf, h, msgSize)); err != nil {
					log.Fatal(err)
				}
			}
			if err := vi.PostSend(ctx, vibe.SimpleSend(buf, h, msgSize)); err != nil {
				log.Fatal(err)
			}
			if _, err := vi.SendWaitPoll(ctx); err != nil {
				log.Fatal(err)
			}
		}
	})

	sys.MustRun()
}
