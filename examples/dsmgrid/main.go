// DSM grid: a bulk-synchronous Jacobi-style relaxation on a shared array,
// the classic workload of software distributed shared memory (the
// paper's reference [7], TreadMarks over VIA). Each node owns a band of a
// shared vector, repeatedly averages each cell with its neighbours, and
// synchronizes with barriers; boundary cells flow between nodes through
// the DSM's release-consistency protocol — no explicit messages anywhere
// in the application code.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"vibe"
)

const (
	nodes  = 3
	cells  = 384 // shared vector of float-ish fixed-point values
	iters  = 8
	region = "grid"
)

func get(d *vibe.DSMNode, ctx *vibe.Ctx, idx int) uint32 {
	var b [4]byte
	if err := d.Read(ctx, region, idx*4, b[:]); err != nil {
		log.Fatal(err)
	}
	return binary.LittleEndian.Uint32(b[:])
}

func put(d *vibe.DSMNode, ctx *vibe.Ctx, idx int, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	if err := d.Write(ctx, region, idx*4, b[:]); err != nil {
		log.Fatal(err)
	}
}

func main() {
	sys, err := vibe.NewCluster("clan", nodes, 17)
	if err != nil {
		log.Fatal(err)
	}
	world := vibe.NewDSMWorld(sys, vibe.DSMDefaultConfig())

	world.Run(func(ctx *vibe.Ctx, d *vibe.DSMNode) {
		pages := (cells*4 + vibe.DSMPageSize - 1) / vibe.DSMPageSize
		if err := d.Alloc(ctx, region, pages); err != nil {
			log.Fatal(err)
		}
		if err := d.Barrier(ctx); err != nil {
			log.Fatal(err)
		}

		// Node 0 sets the boundary conditions: 1000 at both ends.
		if d.Me() == 0 {
			put(d, ctx, 0, 1000)
			put(d, ctx, cells-1, 1000)
		}
		if err := d.Barrier(ctx); err != nil {
			log.Fatal(err)
		}

		// Each node relaxes its band (excluding the global boundaries).
		per := cells / nodes
		lo := d.Me() * per
		hi := lo + per
		if d.Me() == nodes-1 {
			hi = cells
		}
		if lo == 0 {
			lo = 1
		}
		if hi == cells {
			hi = cells - 1
		}

		start := ctx.Now()
		for it := 0; it < iters; it++ {
			// Read the previous values (including neighbours' boundary
			// cells, fetched transparently), compute, write back.
			next := make([]uint32, hi-lo)
			for i := lo; i < hi; i++ {
				next[i-lo] = (get(d, ctx, i-1) + get(d, ctx, i) + get(d, ctx, i+1)) / 3
			}
			for i := lo; i < hi; i++ {
				put(d, ctx, i, next[i-lo])
			}
			// The barrier flushes dirty pages and invalidates caches:
			// everyone sees iteration it's results in iteration it+1.
			if err := d.Barrier(ctx); err != nil {
				log.Fatal(err)
			}
		}

		if d.Me() == 0 {
			fmt.Printf("dsmgrid: %d cells, %d nodes, %d iterations in %v\n",
				cells, nodes, iters, ctx.Now().Sub(start))
			// Heat diffuses one cell per iteration inward from each
			// boundary, so after 8 iterations the first few cells are warm.
			fmt.Printf("dsmgrid: heat near the boundary: cell[1]=%d cell[3]=%d cell[6]=%d\n",
				get(d, ctx, 1), get(d, ctx, 3), get(d, ctx, 6))
			fmt.Printf("dsmgrid: node 0 protocol work: %d page fetches, %d flushes\n",
				d.PageFetches, d.PageFlushes)
		}
	})

	sys.MustRun()
}
