// RDMA: one-sided access to a remote memory region. The server exports a
// registered buffer by sending its (virtual address, memory handle) to the
// client in-band; the client then writes a record into server memory with
// an RDMA write (no server CPU involvement on the data path) and reads it
// back with an RDMA read. This is the get/put programming model the
// paper's future-work section targets.
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log"

	"vibe"
)

const (
	regionSize = 64 * 1024
	recordSize = 8 * 1024
	timeout    = 10 * vibe.Second
)

func main() {
	// RDMA read requires a reliable connection per the VIA spec; the
	// cLAN model supports reads in hardware.
	sys, err := vibe.NewCluster("clan", 2, 7)
	if err != nil {
		log.Fatal(err)
	}
	attrs := vibe.ViAttributes{
		Reliability:     vibe.ReliableDelivery,
		EnableRdmaWrite: true,
		EnableRdmaRead:  true,
	}

	sys.Go(0, "initiator", func(ctx *vibe.Ctx) {
		nic := ctx.OpenNic()
		vi, err := nic.CreateVi(ctx, attrs, nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		if err := vi.ConnectRequest(ctx, 1, "rdma", timeout); err != nil {
			log.Fatal(err)
		}

		// Receive the server's region export: [addr:8][handle:8].
		ctrl := ctx.Malloc(16)
		ch, err := nic.RegisterMem(ctx, ctrl)
		if err != nil {
			log.Fatal(err)
		}
		if err := vi.PostRecv(ctx, vibe.SimpleRecv(ctrl, ch, 16)); err != nil {
			log.Fatal(err)
		}
		if _, err := vi.RecvWaitPoll(ctx); err != nil {
			log.Fatal(err)
		}
		remoteAddr := vibe.Addr(binary.LittleEndian.Uint64(ctrl.Bytes()[0:]))
		remoteHandle := vibe.MemHandle(binary.LittleEndian.Uint64(ctrl.Bytes()[8:]))
		fmt.Printf("rdma: server exported region at %v\n", remoteAddr)

		// RDMA-write a record into the middle of the server's region.
		src := ctx.Malloc(recordSize)
		sh, err := nic.RegisterMem(ctx, src)
		if err != nil {
			log.Fatal(err)
		}
		src.FillPattern(0x5A)
		const off = 16 * 1024
		write := &vibe.Descriptor{
			Op:     vibe.OpRdmaWrite,
			Segs:   []vibe.DataSegment{{Addr: src.Addr(), Handle: sh, Length: recordSize}},
			Remote: &vibe.AddressSegment{Addr: remoteAddr.Advance(off), Handle: remoteHandle},
		}
		t0 := ctx.Now()
		if err := vi.PostSend(ctx, write); err != nil {
			log.Fatal(err)
		}
		if d, err := vi.SendWaitPoll(ctx); err != nil || d.Status.String() != "SUCCESS" {
			log.Fatalf("rdma write: %v %v", err, d)
		}
		fmt.Printf("rdma: wrote %d bytes one-sided in %v\n", recordSize, ctx.Now().Sub(t0))

		// RDMA-read the record back into a fresh buffer and verify.
		dst := ctx.Malloc(recordSize)
		dh, err := nic.RegisterMem(ctx, dst)
		if err != nil {
			log.Fatal(err)
		}
		read := &vibe.Descriptor{
			Op:     vibe.OpRdmaRead,
			Segs:   []vibe.DataSegment{{Addr: dst.Addr(), Handle: dh, Length: recordSize}},
			Remote: &vibe.AddressSegment{Addr: remoteAddr.Advance(off), Handle: remoteHandle},
		}
		t1 := ctx.Now()
		if err := vi.PostSend(ctx, read); err != nil {
			log.Fatal(err)
		}
		if d, err := vi.SendWaitPoll(ctx); err != nil || d.Length != recordSize {
			log.Fatalf("rdma read: %v %v", err, d)
		}
		fmt.Printf("rdma: read %d bytes back in %v\n", recordSize, ctx.Now().Sub(t1))
		if !bytes.Equal(src.Bytes(), dst.Bytes()) {
			log.Fatal("rdma: readback mismatch")
		}
		fmt.Println("rdma: readback verified byte-for-byte")

		// Tell the server we are done (it never touched the data path).
		if err := vi.PostSend(ctx, vibe.SimpleSend(ctrl, ch, 1)); err != nil {
			log.Fatal(err)
		}
		if _, err := vi.SendWaitPoll(ctx); err != nil {
			log.Fatal(err)
		}
	})

	sys.Go(1, "exporter", func(ctx *vibe.Ctx) {
		nic := ctx.OpenNic()
		vi, err := nic.CreateVi(ctx, attrs, nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		region := ctx.Malloc(regionSize)
		rh, err := nic.RegisterMem(ctx, region)
		if err != nil {
			log.Fatal(err)
		}
		// Post the "done" receive before accepting.
		done := ctx.Malloc(16)
		dhh, err := nic.RegisterMem(ctx, done)
		if err != nil {
			log.Fatal(err)
		}
		if err := vi.PostRecv(ctx, vibe.SimpleRecv(done, dhh, 16)); err != nil {
			log.Fatal(err)
		}
		req, err := nic.ConnectWait(ctx, "rdma", timeout)
		if err != nil {
			log.Fatal(err)
		}
		if err := req.Accept(ctx, vi); err != nil {
			log.Fatal(err)
		}

		// Export the region in-band.
		ctrl := ctx.Malloc(16)
		ch, err := nic.RegisterMem(ctx, ctrl)
		if err != nil {
			log.Fatal(err)
		}
		binary.LittleEndian.PutUint64(ctrl.Bytes()[0:], uint64(region.Addr()))
		binary.LittleEndian.PutUint64(ctrl.Bytes()[8:], uint64(rh))
		if err := vi.PostSend(ctx, vibe.SimpleSend(ctrl, ch, 16)); err != nil {
			log.Fatal(err)
		}
		if _, err := vi.SendWaitPoll(ctx); err != nil {
			log.Fatal(err)
		}

		// Sleep until the client says it is done — the server CPU is idle
		// through both one-sided transfers.
		meter := ctx.Host.CPU.StartMeter()
		if _, err := vi.RecvWait(ctx, timeout); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("rdma: exporter CPU utilization during one-sided I/O: %.1f%%\n",
			meter.Utilization()*100)
	})

	sys.MustRun()
}
