// Multi-VI scalability probe: the design question §3.2.4 answers for
// programming-model implementors — "how many VIs should my layer open per
// process?". A hub host opens a growing number of VI connections (as an
// MPI or DSM layer would, one per peer) and measures how small-message
// latency on the *first* VI degrades as more sit open, on Berkeley VIA
// (firmware polls every VI) versus cLAN (hardware doorbells, insensitive).
package main

import (
	"fmt"
	"log"

	"vibe"
)

const (
	msgSize = 64
	rounds  = 40
	maxVIs  = 16
	timeout = 20 * vibe.Second
)

func main() {
	fmt.Printf("%-8s %8s %14s\n", "provider", "open VIs", "latency (us)")
	for _, prov := range []string{"bvia", "clan"} {
		for _, nvis := range []int{1, 4, 16} {
			lat := measure(prov, nvis)
			fmt.Printf("%-8s %8d %14.1f\n", prov, nvis, lat)
		}
	}
	fmt.Println("\nBerkeley VIA degrades with open VIs (firmware poll sweep);")
	fmt.Println("cLAN does not — the paper's guidance for choosing VI fan-out.")
}

// measure opens nvis connected VIs on a hub and ping-pongs on the first.
func measure(prov string, nvis int) float64 {
	sys, err := vibe.NewCluster(prov, 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	var latency float64

	sys.Go(0, "hub", func(ctx *vibe.Ctx) {
		nic := ctx.OpenNic()
		var vis []*vibe.Vi
		for k := 0; k < nvis; k++ {
			vi, err := nic.CreateVi(ctx, vibe.ViAttributes{}, nil, nil)
			if err != nil {
				log.Fatal(err)
			}
			if err := vi.ConnectRequest(ctx, 1, fmt.Sprintf("peer-%d", k), timeout); err != nil {
				log.Fatal(err)
			}
			vis = append(vis, vi)
		}
		vi := vis[0]
		buf := ctx.Malloc(msgSize)
		h, err := nic.RegisterMem(ctx, buf)
		if err != nil {
			log.Fatal(err)
		}
		start := ctx.Now()
		for i := 0; i < rounds; i++ {
			if err := vi.PostRecv(ctx, vibe.SimpleRecv(buf, h, msgSize)); err != nil {
				log.Fatal(err)
			}
			if err := vi.PostSend(ctx, vibe.SimpleSend(buf, h, msgSize)); err != nil {
				log.Fatal(err)
			}
			if _, err := vi.SendWaitPoll(ctx); err != nil {
				log.Fatal(err)
			}
			if _, err := vi.RecvWaitPoll(ctx); err != nil {
				log.Fatal(err)
			}
		}
		latency = ctx.Now().Sub(start).Micros() / float64(rounds) / 2
	})

	sys.Go(1, "peers", func(ctx *vibe.Ctx) {
		nic := ctx.OpenNic()
		var first *vibe.Vi
		buf := ctx.Malloc(msgSize)
		h, err := nic.RegisterMem(ctx, buf)
		if err != nil {
			log.Fatal(err)
		}
		for k := 0; k < nvis; k++ {
			vi, err := nic.CreateVi(ctx, vibe.ViAttributes{}, nil, nil)
			if err != nil {
				log.Fatal(err)
			}
			if k == 0 {
				first = vi
				if err := vi.PostRecv(ctx, vibe.SimpleRecv(buf, h, msgSize)); err != nil {
					log.Fatal(err)
				}
			}
			req, err := nic.ConnectWait(ctx, fmt.Sprintf("peer-%d", k), timeout)
			if err != nil {
				log.Fatal(err)
			}
			if err := req.Accept(ctx, vi); err != nil {
				log.Fatal(err)
			}
		}
		for i := 0; i < rounds; i++ {
			if _, err := first.RecvWaitPoll(ctx); err != nil {
				log.Fatal(err)
			}
			if i+1 < rounds {
				if err := first.PostRecv(ctx, vibe.SimpleRecv(buf, h, msgSize)); err != nil {
					log.Fatal(err)
				}
			}
			if err := first.PostSend(ctx, vibe.SimpleSend(buf, h, msgSize)); err != nil {
				log.Fatal(err)
			}
			if _, err := first.SendWaitPoll(ctx); err != nil {
				log.Fatal(err)
			}
		}
	})

	sys.MustRun()
	return latency
}
