// MP ring: a classic message-passing workload (a token circulating a ring
// plus a neighbour halo exchange) running on the MPI-like layer the paper
// targets in §3.3/§5 — demonstrating tagged Send/Recv with automatic
// eager/rendezvous protocol selection, collectives, and the registration
// cache, on two different simulated VIA providers.
package main

import (
	"fmt"
	"log"

	"vibe"
)

const (
	ranks     = 4
	laps      = 3
	haloBytes = 24 * 1024 // rendezvous-size (above the 8KB eager limit)
	tagToken  = 1
	tagHaloR  = 2
	tagHaloL  = 3
)

func main() {
	for _, prov := range []string{"clan", "bvia"} {
		runRing(prov)
	}
}

func runRing(prov string) {
	sys, err := vibe.NewCluster(prov, ranks, 11)
	if err != nil {
		log.Fatal(err)
	}
	world := vibe.NewMPWorld(sys, vibe.MPDefaultConfig())

	world.Run(func(ctx *vibe.Ctx, ep *vibe.MPEndpoint) {
		me := ep.Rank()
		right := (me + 1) % ranks
		left := (me + ranks - 1) % ranks

		// Phase 1: circulate a token, each rank incrementing it (eager
		// path: 8 bytes).
		token := ctx.Malloc(8)
		start := ctx.Now()
		if me == 0 {
			token.Bytes()[0] = 1
			if err := ep.Send(ctx, right, tagToken, token, 8); err != nil {
				log.Fatal(err)
			}
		}
		for lap := 0; lap < laps; lap++ {
			got, _, err := ep.Recv(ctx, left, tagToken)
			if err != nil {
				log.Fatal(err)
			}
			v := got.Bytes()[0] + 1
			if me == 0 && lap == laps-1 {
				fmt.Printf("mpring[%s]: token value %d after %d laps (%v)\n",
					prov, v, laps, ctx.Now().Sub(start))
				break
			}
			token.Bytes()[0] = v
			if err := ep.Send(ctx, right, tagToken, token, 8); err != nil {
				log.Fatal(err)
			}
		}
		if err := ep.Barrier(ctx); err != nil {
			log.Fatal(err)
		}

		// Phase 2: halo exchange with both neighbours (rendezvous path:
		// 24KB moves zero-copy over RDMA after an RTS/CTS handshake).
		halo := ctx.Malloc(haloBytes)
		halo.FillPattern(byte(me))
		t0 := ctx.Now()
		// Even ranks send first to avoid head-of-line blocking on the
		// synchronous rendezvous.
		if me%2 == 0 {
			if err := ep.Send(ctx, right, tagHaloR, halo, haloBytes); err != nil {
				log.Fatal(err)
			}
			fromLeft, _, err := ep.Recv(ctx, left, tagHaloR)
			if err != nil {
				log.Fatal(err)
			}
			if err := fromLeft.CheckPattern(byte(left), haloBytes); err != nil {
				log.Fatalf("rank %d halo corrupted: %v", me, err)
			}
		} else {
			fromLeft, _, err := ep.Recv(ctx, left, tagHaloR)
			if err != nil {
				log.Fatal(err)
			}
			if err := fromLeft.CheckPattern(byte(left), haloBytes); err != nil {
				log.Fatalf("rank %d halo corrupted: %v", me, err)
			}
			if err := ep.Send(ctx, right, tagHaloR, halo, haloBytes); err != nil {
				log.Fatal(err)
			}
		}
		if err := ep.Barrier(ctx); err != nil {
			log.Fatal(err)
		}
		if me == 0 {
			fmt.Printf("mpring[%s]: %dB halo exchange on %d ranks in %v "+
				"(eager sends %d, rendezvous sends %d)\n",
				prov, haloBytes, ranks, ctx.Now().Sub(t0),
				ep.EagerSends, ep.RendezvousSends)
		}
	})

	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
}
