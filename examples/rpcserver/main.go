// RPC server: the cluster workload that motivates the paper's
// client-server micro-benchmark (§3.3.1). A server host exports a
// key-value store over VIA; three client hosts issue synchronous
// request/reply transactions over their own VI connections, and the
// server multiplexes all of them through one completion queue.
//
// The wire protocol is a tiny binary format (encoding/binary) carried in
// VIA send/receive messages: GET and PUT requests with string keys and
// values.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"vibe"
)

const (
	numClients  = 3
	opsPerThem  = 50
	maxMsg      = 4096
	timeout     = 10 * vibe.Second
	opPut       = 1
	opGet       = 2
	statusOK    = 0
	statusMiss  = 1
	serviceName = "kv"
)

// encodeReq builds [op:1][klen:2][vlen:2][key][value].
func encodeReq(op byte, key, value string) []byte {
	msg := make([]byte, 5+len(key)+len(value))
	msg[0] = op
	binary.LittleEndian.PutUint16(msg[1:], uint16(len(key)))
	binary.LittleEndian.PutUint16(msg[3:], uint16(len(value)))
	copy(msg[5:], key)
	copy(msg[5+len(key):], value)
	return msg
}

func decodeReq(msg []byte) (op byte, key, value string) {
	op = msg[0]
	klen := int(binary.LittleEndian.Uint16(msg[1:]))
	vlen := int(binary.LittleEndian.Uint16(msg[3:]))
	key = string(msg[5 : 5+klen])
	value = string(msg[5+klen : 5+klen+vlen])
	return
}

func encodeReply(status byte, value string) []byte {
	msg := make([]byte, 3+len(value))
	msg[0] = status
	binary.LittleEndian.PutUint16(msg[1:], uint16(len(value)))
	copy(msg[3:], value)
	return msg
}

func decodeReply(msg []byte) (status byte, value string) {
	status = msg[0]
	vlen := int(binary.LittleEndian.Uint16(msg[1:]))
	return status, string(msg[3 : 3+vlen])
}

func main() {
	sys, err := vibe.NewCluster("clan", numClients+1, 42)
	if err != nil {
		log.Fatal(err)
	}

	// --- server on host 0 ---
	sys.Go(0, "kv-server", func(ctx *vibe.Ctx) {
		nic := ctx.OpenNic()
		store := map[string]string{}

		cq, err := nic.CreateCQ(ctx, 256)
		if err != nil {
			log.Fatal(err)
		}

		type conn struct {
			vi         *vibe.Vi
			rbuf, sbuf *vibe.Buffer
			rh, sh     vibe.MemHandle
		}
		conns := map[int]*conn{}

		// Accept one connection per client; all receive work queues feed
		// the single CQ, so one wait covers every client.
		for i := 0; i < numClients; i++ {
			vi, err := nic.CreateVi(ctx, vibe.ViAttributes{}, nil, cq)
			if err != nil {
				log.Fatal(err)
			}
			rbuf, sbuf := ctx.Malloc(maxMsg), ctx.Malloc(maxMsg)
			rh, err := nic.RegisterMem(ctx, rbuf)
			if err != nil {
				log.Fatal(err)
			}
			sh, err := nic.RegisterMem(ctx, sbuf)
			if err != nil {
				log.Fatal(err)
			}
			if err := vi.PostRecv(ctx, vibe.SimpleRecv(rbuf, rh, maxMsg)); err != nil {
				log.Fatal(err)
			}
			req, err := nic.ConnectWait(ctx, serviceName, timeout)
			if err != nil {
				log.Fatal(err)
			}
			if err := req.Accept(ctx, vi); err != nil {
				log.Fatal(err)
			}
			conns[vi.ID()] = &conn{vi: vi, rbuf: rbuf, rh: rh, sbuf: sbuf, sh: sh}
		}

		served := 0
		for served < numClients*opsPerThem {
			c, err := cq.WaitPoll(ctx)
			if err != nil {
				log.Fatal(err)
			}
			cn := conns[c.Vi.ID()]
			d, ok := cn.vi.RecvDone(ctx)
			if !ok {
				log.Fatal("CQ entry without completed receive")
			}
			op, key, value := decodeReq(cn.rbuf.Bytes()[:d.Length])

			// Re-arm the receive before replying.
			if err := cn.vi.PostRecv(ctx, vibe.SimpleRecv(cn.rbuf, cn.rh, maxMsg)); err != nil {
				log.Fatal(err)
			}

			var reply []byte
			switch op {
			case opPut:
				store[key] = value
				reply = encodeReply(statusOK, "")
			case opGet:
				if v, ok := store[key]; ok {
					reply = encodeReply(statusOK, v)
				} else {
					reply = encodeReply(statusMiss, "")
				}
			}
			copy(cn.sbuf.Bytes(), reply)
			if err := cn.vi.PostSend(ctx, &vibe.Descriptor{Op: vibe.OpSend, Segs: []vibe.DataSegment{{
				Addr: cn.sbuf.Addr(), Handle: cn.sh, Length: len(reply)}}}); err != nil {
				log.Fatal(err)
			}
			if _, err := cn.vi.SendWaitPoll(ctx); err != nil {
				log.Fatal(err)
			}
			served++
		}
		fmt.Printf("rpcserver: served %d transactions from %d clients via one CQ\n",
			served, numClients)
	})

	// --- clients on hosts 1..numClients ---
	for c := 1; c <= numClients; c++ {
		c := c
		sys.Go(c, fmt.Sprintf("client-%d", c), func(ctx *vibe.Ctx) {
			nic := ctx.OpenNic()
			vi, err := nic.CreateVi(ctx, vibe.ViAttributes{}, nil, nil)
			if err != nil {
				log.Fatal(err)
			}
			if err := vi.ConnectRequest(ctx, 0, serviceName, timeout); err != nil {
				log.Fatal(err)
			}
			reqBuf, repBuf := ctx.Malloc(maxMsg), ctx.Malloc(maxMsg)
			reqH, err := nic.RegisterMem(ctx, reqBuf)
			if err != nil {
				log.Fatal(err)
			}
			repH, err := nic.RegisterMem(ctx, repBuf)
			if err != nil {
				log.Fatal(err)
			}

			start := ctx.Now()
			for i := 0; i < opsPerThem; i++ {
				// Alternate PUT/GET; each GET reads the key the previous
				// iteration wrote.
				key := fmt.Sprintf("k%d-%d", c, i-i%2)
				var msg []byte
				if i%2 == 0 {
					msg = encodeReq(opPut, key, fmt.Sprintf("value-%d-%d", c, i))
				} else {
					msg = encodeReq(opGet, key, "")
				}
				copy(reqBuf.Bytes(), msg)
				if err := vi.PostRecv(ctx, vibe.SimpleRecv(repBuf, repH, maxMsg)); err != nil {
					log.Fatal(err)
				}
				if err := vi.PostSend(ctx, &vibe.Descriptor{Op: vibe.OpSend, Segs: []vibe.DataSegment{{
					Addr: reqBuf.Addr(), Handle: reqH, Length: len(msg)}}}); err != nil {
					log.Fatal(err)
				}
				if _, err := vi.SendWaitPoll(ctx); err != nil {
					log.Fatal(err)
				}
				d, err := vi.RecvWaitPoll(ctx)
				if err != nil {
					log.Fatal(err)
				}
				status, val := decodeReply(repBuf.Bytes()[:d.Length])
				if i%2 == 1 && (status != statusOK || val == "") {
					log.Fatalf("client %d: GET %q failed (status %d)", c, key, status)
				}
			}
			elapsed := ctx.Now().Sub(start)
			fmt.Printf("rpcserver: client %d: %d transactions, %.0f tx/s\n",
				c, opsPerThem, float64(opsPerThem)/elapsed.Seconds())
		})
	}

	sys.MustRun()
}
