// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (plus the §3.2.5 extensions and the DESIGN.md
// ablations). Each benchmark regenerates its artifact from the simulated
// providers and reports the headline values as custom metrics, so
// `go test -bench=. -benchmem` prints the same rows/series the paper
// reports; EXPERIMENTS.md records the paper-vs-measured comparison.
//
// The ns/op column measures how fast the *simulator* reproduces the
// artifact; the custom metrics (suffixed _us, _MBps, _tps, _pct) are the
// simulated results themselves.
package vibe_test

import (
	"testing"

	"vibe/internal/bench"
	"vibe/internal/core"
	"vibe/internal/logp"
	"vibe/internal/mp"
	"vibe/internal/provider"
	"vibe/internal/stream"
)

func quickCfg(m *provider.Model) core.Config {
	cfg := core.DefaultConfig(m)
	cfg.Iters = 30
	cfg.Warmup = 8
	cfg.BWMessages = 60
	cfg.NonDataReps = 4
	return cfg
}

// BenchmarkTable1NonData regenerates Table 1.
func BenchmarkTable1NonData(b *testing.B) {
	var last map[string]core.NonDataCosts
	for i := 0; i < b.N; i++ {
		last = map[string]core.NonDataCosts{}
		for _, m := range provider.All() {
			c, err := core.NonData(quickCfg(m))
			if err != nil {
				b.Fatal(err)
			}
			last[m.Name] = c
		}
	}
	for name, c := range last {
		b.ReportMetric(c.EstablishConn, name+"_conn_us")
		b.ReportMetric(c.CreateVi, name+"_createvi_us")
		b.ReportMetric(c.CreateCq, name+"_createcq_us")
	}
}

// BenchmarkFig1MemRegister regenerates Figure 1.
func BenchmarkFig1MemRegister(b *testing.B) {
	var at28k = map[string]float64{}
	for i := 0; i < b.N; i++ {
		for _, m := range provider.All() {
			s, err := core.MemRegister(quickCfg(m), core.RegLadder())
			if err != nil {
				b.Fatal(err)
			}
			at28k[m.Name] = s.MustAt(28672)
		}
	}
	for name, v := range at28k {
		b.ReportMetric(v, name+"_reg28k_us")
	}
}

// BenchmarkFig2MemDeregister regenerates Figure 2.
func BenchmarkFig2MemDeregister(b *testing.B) {
	var at32m = map[string]float64{}
	for i := 0; i < b.N; i++ {
		for _, m := range provider.All() {
			s, err := core.MemDeregister(quickCfg(m), []int{1024, 32 << 20})
			if err != nil {
				b.Fatal(err)
			}
			at32m[m.Name] = s.MustAt(float64(32 << 20))
		}
	}
	for name, v := range at32m {
		b.ReportMetric(v, name+"_dereg32M_us")
	}
}

// BenchmarkFig3BaseLatencyPolling regenerates the latency half of Fig 3.
func BenchmarkFig3BaseLatencyPolling(b *testing.B) {
	small, large := map[string]float64{}, map[string]float64{}
	for i := 0; i < b.N; i++ {
		for _, m := range provider.All() {
			lat, _, err := core.LatencySweep(quickCfg(m), []int{4, 28672}, core.XferOpts{})
			if err != nil {
				b.Fatal(err)
			}
			small[m.Name], large[m.Name] = lat.MustAt(4), lat.MustAt(28672)
		}
	}
	for name := range small {
		b.ReportMetric(small[name], name+"_4B_us")
		b.ReportMetric(large[name], name+"_28K_us")
	}
}

// BenchmarkFig3BaseBandwidthPolling regenerates the bandwidth half of Fig 3.
func BenchmarkFig3BaseBandwidthPolling(b *testing.B) {
	plateau := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for _, m := range provider.All() {
			bw, _, err := core.BandwidthSweep(quickCfg(m), []int{28672}, core.XferOpts{})
			if err != nil {
				b.Fatal(err)
			}
			plateau[m.Name] = bw.MustAt(28672)
		}
	}
	for name, v := range plateau {
		b.ReportMetric(v, name+"_28K_MBps")
	}
}

// BenchmarkFig4BaseLatencyBlocking regenerates Figure 4.
func BenchmarkFig4BaseLatencyBlocking(b *testing.B) {
	lat4, cpu4 := map[string]float64{}, map[string]float64{}
	for i := 0; i < b.N; i++ {
		for _, m := range provider.All() {
			lat, cpuU, err := core.LatencySweep(quickCfg(m), []int{4}, core.XferOpts{Mode: core.Blocking})
			if err != nil {
				b.Fatal(err)
			}
			lat4[m.Name], cpu4[m.Name] = lat.MustAt(4), cpuU.MustAt(4)
		}
	}
	for name := range lat4 {
		b.ReportMetric(lat4[name], name+"_4B_us")
		b.ReportMetric(cpu4[name], name+"_cpu_pct")
	}
}

// BenchmarkFig5BufferReuse regenerates Figure 5 (BVIA only, as plotted).
func BenchmarkFig5BufferReuse(b *testing.B) {
	var base, noReuse float64
	for i := 0; i < b.N; i++ {
		cfg := quickCfg(provider.BVIA())
		r0, err := core.Latency(cfg, 28672, core.XferOpts{VaryBuffers: true, ReusePct: 0})
		if err != nil {
			b.Fatal(err)
		}
		r100, err := core.Latency(cfg, 28672, core.XferOpts{})
		if err != nil {
			b.Fatal(err)
		}
		base, noReuse = r100.LatencyUs, r0.LatencyUs
	}
	b.ReportMetric(base, "bvia_100pct_28K_us")
	b.ReportMetric(noReuse, "bvia_0pct_28K_us")
	b.ReportMetric(noReuse-base, "xlat_penalty_us")
}

// BenchmarkFig6MultiVI regenerates Figure 6 (BVIA only, as plotted).
func BenchmarkFig6MultiVI(b *testing.B) {
	lat := map[int]float64{}
	for i := 0; i < b.N; i++ {
		cfg := quickCfg(provider.BVIA())
		for _, n := range []int{1, 16} {
			r, err := core.Latency(cfg, 4, core.XferOpts{ActiveVIs: n})
			if err != nil {
				b.Fatal(err)
			}
			lat[n] = r.LatencyUs
		}
	}
	b.ReportMetric(lat[1], "bvia_1vi_us")
	b.ReportMetric(lat[16], "bvia_16vi_us")
}

// BenchmarkFig7ClientServer regenerates Figure 7.
func BenchmarkFig7ClientServer(b *testing.B) {
	peak := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for _, m := range provider.All() {
			r, err := core.Transaction(quickCfg(m), 16, 16)
			if err != nil {
				b.Fatal(err)
			}
			peak[m.Name] = r.TPS
		}
	}
	for name, v := range peak {
		b.ReportMetric(v, name+"_16B_tps")
	}
}

// BenchmarkCQOverhead regenerates the §4.3.3 observation.
func BenchmarkCQOverhead(b *testing.B) {
	delta := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for _, m := range provider.All() {
			_, _, d, err := core.CQOverhead(quickCfg(m), []int{4})
			if err != nil {
				b.Fatal(err)
			}
			delta[m.Name] = d.MustAt(4)
		}
	}
	for name, v := range delta {
		b.ReportMetric(v, name+"_cq_overhead_us")
	}
}

// --- §3.2.5 extension benchmarks ---

func BenchmarkSegments(b *testing.B) {
	var one, four float64
	for i := 0; i < b.N; i++ {
		cfg := quickCfg(provider.CLAN())
		r1, err := core.Latency(cfg, 4096, core.XferOpts{Segments: 1})
		if err != nil {
			b.Fatal(err)
		}
		r4, err := core.Latency(cfg, 4096, core.XferOpts{Segments: 4})
		if err != nil {
			b.Fatal(err)
		}
		one, four = r1.LatencyUs, r4.LatencyUs
	}
	b.ReportMetric(one, "clan_1seg_us")
	b.ReportMetric(four, "clan_4seg_us")
}

func BenchmarkAsyncNotify(b *testing.B) {
	var sync, asy float64
	for i := 0; i < b.N; i++ {
		cfg := quickCfg(provider.CLAN())
		rs, err := core.Latency(cfg, 64, core.XferOpts{})
		if err != nil {
			b.Fatal(err)
		}
		ra, err := core.Latency(cfg, 64, core.XferOpts{Notify: true})
		if err != nil {
			b.Fatal(err)
		}
		sync, asy = rs.LatencyUs, ra.LatencyUs
	}
	b.ReportMetric(sync, "clan_sync_us")
	b.ReportMetric(asy, "clan_notify_us")
}

func BenchmarkRDMA(b *testing.B) {
	lat := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for _, m := range provider.All() {
			r, err := core.Latency(quickCfg(m), 4096, core.XferOpts{RDMA: true})
			if err != nil {
				b.Fatal(err)
			}
			lat[m.Name] = r.LatencyUs
		}
	}
	for name, v := range lat {
		b.ReportMetric(v, name+"_rdmaw_4K_us")
	}
}

func BenchmarkPipeline(b *testing.B) {
	var w1, w16 float64
	for i := 0; i < b.N; i++ {
		s, err := core.PipelineSweep(quickCfg(provider.CLAN()), 4096, []int{1, 16})
		if err != nil {
			b.Fatal(err)
		}
		w1, w16 = s.MustAt(1), s.MustAt(16)
	}
	b.ReportMetric(w1, "clan_window1_MBps")
	b.ReportMetric(w16, "clan_window16_MBps")
}

func BenchmarkMTU(b *testing.B) {
	var at, over float64
	for i := 0; i < b.N; i++ {
		m := provider.BVIA()
		lat, _, err := core.LatencySweep(quickCfg(m), []int{m.WireMTU, m.WireMTU + 4}, core.XferOpts{})
		if err != nil {
			b.Fatal(err)
		}
		at, over = lat.MustAt(float64(m.WireMTU)), lat.MustAt(float64(m.WireMTU+4))
	}
	b.ReportMetric(at, "bvia_atMTU_us")
	b.ReportMetric(over, "bvia_overMTU_us")
}

func BenchmarkReliability(b *testing.B) {
	lat := map[string]float64{}
	for i := 0; i < b.N; i++ {
		g, err := core.ReliabilitySweep(quickCfg(provider.CLAN()), []int{1024}, false)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range g.Series {
			lat[s.Name] = s.MustAt(1024)
		}
	}
	for name, v := range lat {
		b.ReportMetric(v, "clan_"+name+"_us")
	}
}

// --- ablations and baseline comparator ---

func BenchmarkAblationTLBCapacity(b *testing.B) {
	lat := map[int]float64{}
	for i := 0; i < b.N; i++ {
		for _, capacity := range []int{32, 1024} {
			m := provider.BVIA()
			m.TLBCapacity = capacity
			cfg := quickCfg(m)
			cfg.Warmup = 20
			r, err := core.Latency(cfg, 28672, core.XferOpts{VaryBuffers: true, ReusePct: 0, PoolBuffers: 16})
			if err != nil {
				b.Fatal(err)
			}
			lat[capacity] = r.LatencyUs
		}
	}
	b.ReportMetric(lat[32], "tlb32_us")
	b.ReportMetric(lat[1024], "tlb1024_us")
}

// BenchmarkLogPBaseline extracts the LogP comparator the paper argues is
// insufficient.
func BenchmarkLogPBaseline(b *testing.B) {
	params := map[string]logp.Params{}
	for i := 0; i < b.N; i++ {
		for _, m := range provider.All() {
			p, err := logp.Extract(m)
			if err != nil {
				b.Fatal(err)
			}
			params[m.Name] = p
		}
	}
	for name, p := range params {
		b.ReportMetric(p.L, name+"_L_us")
		b.ReportMetric(p.Os, name+"_os_us")
		b.ReportMetric(p.G, name+"_g_us")
	}
}

// --- programming-model layer benchmarks (paper §5 future work) ---

// BenchmarkMPLayer measures the message-passing layer against raw VIA at
// an eager and a rendezvous size.
func BenchmarkMPLayer(b *testing.B) {
	var eager, rdv float64
	for i := 0; i < b.N; i++ {
		cfg := quickCfg(provider.CLAN())
		s, err := core.MPLatency(cfg, []int{1024, 28672}, mp.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		eager, rdv = s.MustAt(1024), s.MustAt(28672)
	}
	b.ReportMetric(eager, "clan_mp_1K_us")
	b.ReportMetric(rdv, "clan_mp_28K_us")
}

// BenchmarkGetPutLayer measures one-sided puts and gets, including the
// daemon-serviced fallback on Berkeley VIA.
func BenchmarkGetPutLayer(b *testing.B) {
	type pg struct{ put, get float64 }
	res := map[string]pg{}
	for i := 0; i < b.N; i++ {
		for _, m := range []*provider.Model{provider.CLAN(), provider.BVIA()} {
			put, get, err := core.GPLatency(quickCfg(m), 4096)
			if err != nil {
				b.Fatal(err)
			}
			res[m.Name] = pg{put, get}
		}
	}
	for name, v := range res {
		b.ReportMetric(v.put, name+"_put4K_us")
		b.ReportMetric(v.get, name+"_get4K_us")
	}
}

// BenchmarkStreamLayer measures the sockets-like layer's throughput and
// 1KB round-trip latency.
func BenchmarkStreamLayer(b *testing.B) {
	var tput, lat float64
	for i := 0; i < b.N; i++ {
		cfg := quickCfg(provider.CLAN())
		var err error
		tput, err = core.StreamThroughput(cfg, 512<<10, stream.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		lat, err = core.StreamPingPong(cfg, 1024, stream.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(tput, "clan_stream_MBps")
	b.ReportMetric(lat, "clan_stream_1K_us")
}

// BenchmarkDSMLayer measures the distributed-shared-memory layer's
// lock-protected counter increment.
func BenchmarkDSMLayer(b *testing.B) {
	var us float64
	for i := 0; i < b.N; i++ {
		var err error
		us, _, err = core.DSMLockContention(quickCfg(provider.CLAN()), 3, 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(us, "clan_dsm_incr_us")
}

// BenchmarkSimulatorThroughput measures the raw discrete-event engine:
// simulated ping-pongs per wall-clock second (a sanity metric for the
// substrate itself, not a paper artifact).
func BenchmarkSimulatorThroughput(b *testing.B) {
	sizes := bench.SmallLadder()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.LatencySweep(quickCfg(provider.CLAN()), sizes, core.XferOpts{}); err != nil {
			b.Fatal(err)
		}
	}
}
