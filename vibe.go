// Package vibe is a reproduction of "VIBe: A Micro-benchmark Suite for
// Evaluating Virtual Interface Architecture (VIA) Implementations"
// (Banikazemi et al., IPPS/IPDPS 2001) as a pure-Go library.
//
// Because VIA hardware is extinct, the library contains a complete
// software implementation of the Virtual Interface Architecture running on
// a deterministic discrete-event hardware simulation, three provider
// models calibrated to the paper's systems (M-VIA on Gigabit Ethernet,
// Berkeley VIA on Myrinet, Giganet cLAN), and the VIBe suite itself.
//
// This package is the public facade: it re-exports the VIA programming
// interface (a VIPL-style API), the provider models, and the benchmark
// suite. See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
//
// Quick start (see examples/quickstart for the runnable version):
//
//	sys, _ := vibe.NewCluster("clan", 2, 1)
//	sys.Go(0, "client", func(ctx *vibe.Ctx) {
//	    nic := ctx.OpenNic()
//	    vi, _ := nic.CreateVi(ctx, vibe.ViAttributes{}, nil, nil)
//	    _ = vi.ConnectRequest(ctx, 1, "svc", 10*vibe.Second)
//	    ...
//	})
//	sys.MustRun()
package vibe

import (
	"vibe/internal/core"
	"vibe/internal/dsm"
	"vibe/internal/getput"
	"vibe/internal/mp"
	"vibe/internal/provider"
	"vibe/internal/sim"
	"vibe/internal/stream"
	"vibe/internal/via"
	"vibe/internal/vmem"
)

// Simulated-memory types: VIA data segments name buffers by virtual
// address, and Ctx.Malloc returns a Buffer.
type (
	// Buffer is a page-aligned allocation in a host's simulated address
	// space, backed by real bytes.
	Buffer = vmem.Buffer
	// Addr is a simulated virtual address.
	Addr = vmem.Addr
)

// --- VIA programming interface (VIPL-style) ---

// Core VIA types, re-exported from the implementation.
type (
	// System is a simulated cluster of hosts connected by a provider's
	// network.
	System = via.System
	// Ctx is a simulated process's execution context; all VIA calls take
	// one.
	Ctx = via.Ctx
	// Nic, Vi, CQ are the VIA objects (VipNic, VipVi, VipCQ).
	Nic = via.Nic
	Vi  = via.Vi
	CQ  = via.CQ
	// Descriptor and its segments form VIA work requests.
	Descriptor     = via.Descriptor
	DataSegment    = via.DataSegment
	AddressSegment = via.AddressSegment
	MemHandle      = via.MemHandle
	ViAttributes   = via.ViAttributes
	// Completion is a completion-queue entry.
	Completion = via.Completion
)

// Reliability levels of the VIA specification.
const (
	Unreliable        = via.Unreliable
	ReliableDelivery  = via.ReliableDelivery
	ReliableReception = via.ReliableReception
)

// Descriptor operations.
const (
	OpSend      = via.OpSend
	OpRdmaWrite = via.OpRdmaWrite
	OpRdmaRead  = via.OpRdmaRead
)

// Virtual-time units for timeouts and think times.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Convenience descriptor constructors.
var (
	SimpleSend = via.SimpleSend
	SimpleRecv = via.SimpleRecv
)

// NewCluster builds a simulated cluster of n hosts on the named provider
// ("mvia", "bvia", or "clan"). Equal seeds give bit-identical runs.
func NewCluster(providerName string, n int, seed int64) (*System, error) {
	m, err := provider.ByName(providerName)
	if err != nil {
		return nil, err
	}
	return via.NewSystem(m, n, seed), nil
}

// Providers lists the available provider model names.
func Providers() []string {
	var names []string
	for _, m := range provider.All() {
		names = append(names, m.Name)
	}
	return names
}

// --- The VIBe suite ---

// Suite types, re-exported.
type (
	// Config carries benchmark run parameters.
	Config = core.Config
	// XferOpts vary one VIA component at a time relative to the base
	// configuration.
	XferOpts = core.XferOpts
	// XferResult is one data-transfer measurement.
	XferResult = core.XferResult
	// Report is the output of one experiment.
	Report = core.Report
	// Experiment regenerates one paper artifact.
	Experiment = core.Experiment
)

// Completion-check modes.
const (
	Polling  = core.Polling
	Blocking = core.Blocking
)

// DefaultConfig returns the paper-reproduction configuration for the
// named provider.
func DefaultConfig(providerName string) (Config, error) {
	m, err := provider.ByName(providerName)
	if err != nil {
		return Config{}, err
	}
	return core.DefaultConfig(m), nil
}

// Scenario types: a scenario is a first-class design point — a base
// provider model, parameter overrides, and run-config overrides — that
// every experiment can execute under.
type (
	// Scenario is a compiled, validated design point.
	Scenario = core.Scenario
	// ScenarioSpec is the serializable scenario description
	// ({base, set, run}) that compiles into a Scenario.
	ScenarioSpec = core.ScenarioSpec
)

// NewScenario validates and compiles a scenario spec.
func NewScenario(spec ScenarioSpec, quick bool) (*Scenario, error) {
	return core.NewScenario(spec, quick)
}

// LoadScenario reads a scenario spec from a JSON file and compiles it.
func LoadScenario(path string, quick bool) (*Scenario, error) {
	return core.LoadScenario(path, quick)
}

// DefaultScenario is the unmodified paper configuration.
func DefaultScenario(quick bool) *Scenario { return core.DefaultScenario(quick) }

// Experiments returns the full experiment registry (Table 1, Figures 1-7,
// the §3.2.5 extensions, and the ablations).
func Experiments() []*Experiment { return core.Experiments() }

// RunExperiment runs one experiment by id (e.g. "T1", "F3", "XRDMA")
// under the default scenario.
func RunExperiment(id string, quick bool) (*Report, error) {
	return RunExperimentScenario(id, core.DefaultScenario(quick))
}

// RunExperimentScenario runs one experiment by id under the given
// scenario.
func RunExperimentScenario(id string, sc *Scenario) (*Report, error) {
	e, err := core.ExperimentByID(id)
	if err != nil {
		return nil, err
	}
	return e.Run(sc)
}

// Latency measures one ping-pong latency point on the named provider.
func Latency(providerName string, size int, o XferOpts) (XferResult, error) {
	cfg, err := DefaultConfig(providerName)
	if err != nil {
		return XferResult{}, err
	}
	return core.Latency(cfg, size, o)
}

// Bandwidth measures one streaming bandwidth point on the named provider.
func Bandwidth(providerName string, size int, o XferOpts) (XferResult, error) {
	cfg, err := DefaultConfig(providerName)
	if err != nil {
		return XferResult{}, err
	}
	return core.Bandwidth(cfg, size, o)
}

// --- Programming-model layers (the paper's §3.3/§5 targets) ---

// Message-passing layer types: tagged, reliable Send/Recv with
// eager/rendezvous protocols, plus Barrier/Bcast/Gather collectives.
type (
	// MPWorld is a fully-meshed set of message-passing ranks, one per
	// host.
	MPWorld = mp.World
	// MPEndpoint is one rank's handle.
	MPEndpoint = mp.Endpoint
	// MPConfig tunes the layer (eager limit, ring size, registration
	// cache).
	MPConfig = mp.Config
)

// NewMPWorld prepares a message-passing world over sys with one rank per
// host. Use MPDefaultConfig() for production-shaped protocol settings.
func NewMPWorld(sys *System, cfg MPConfig) *MPWorld { return mp.NewWorld(sys, cfg) }

// MPDefaultConfig returns the message-passing layer's default tuning.
func MPDefaultConfig() MPConfig { return mp.DefaultConfig() }

// One-sided get/put layer types: named exposed regions, RDMA-write puts,
// RDMA-read gets with a daemon-serviced fallback.
type (
	// GPFabric is a set of get/put nodes, one per host.
	GPFabric = getput.Fabric
	// GPNode is one node's handle.
	GPNode = getput.Node
	// GPConfig tunes the layer.
	GPConfig = getput.Config
)

// NewGPFabric prepares a get/put fabric over sys with one node per host.
func NewGPFabric(sys *System, cfg GPConfig) *GPFabric { return getput.NewFabric(sys, cfg) }

// GPDefaultConfig returns the get/put layer's default tuning.
func GPDefaultConfig() GPConfig { return getput.DefaultConfig() }

// Sockets-like byte-stream layer types (the paper's reference [17]):
// reliable, ordered, flow-controlled streams with Dial/Listen/Read/Write.
type (
	// StreamConn is a byte-stream connection.
	StreamConn = stream.Conn
	// StreamConfig tunes segmentation and the receive window.
	StreamConfig = stream.Config
)

// StreamDial connects a byte stream to a listening service on the remote
// host.
func StreamDial(ctx *Ctx, remote int, service string, cfg StreamConfig) (*StreamConn, error) {
	return stream.Dial(ctx, remote, service, cfg)
}

// StreamListen blocks until a stream connection arrives for the service.
func StreamListen(ctx *Ctx, service string, cfg StreamConfig) (*StreamConn, error) {
	return stream.Listen(ctx, service, cfg)
}

// StreamDefaultConfig returns the stream layer's default tuning.
func StreamDefaultConfig() StreamConfig { return stream.DefaultConfig() }

// Distributed-shared-memory layer types (the paper's reference [7],
// TreadMarks over VIA): home-based release-consistent shared regions with
// locks and barriers.
type (
	// DSMWorld is a DSM cluster; node 0 runs the lock/barrier manager.
	DSMWorld = dsm.World
	// DSMNode is one host's DSM handle.
	DSMNode = dsm.Node
	// DSMConfig tunes the layer.
	DSMConfig = dsm.Config
)

// DSMPageSize is the DSM sharing granularity in bytes.
const DSMPageSize = dsm.PageSize

// NewDSMWorld prepares a DSM world over sys with one node per host.
func NewDSMWorld(sys *System, cfg DSMConfig) *DSMWorld { return dsm.New(sys, cfg) }

// DSMDefaultConfig returns the DSM layer's default tuning.
func DSMDefaultConfig() DSMConfig { return dsm.DefaultConfig() }
