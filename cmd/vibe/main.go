// Command vibe runs individual VIBe micro-benchmarks against a simulated
// VIA provider, mirroring how the paper's suite is driven.
//
// Usage examples:
//
//	vibe -provider clan -bench latency
//	vibe -provider bvia -bench latency -reuse 0 -sizes 4,1024,28672
//	vibe -provider bvia -bench bandwidth -vis 16
//	vibe -provider mvia -bench latency -mode block -cq
//	vibe -provider clan -bench clientserver -req 16
//	vibe -provider mvia -bench nondata
//	vibe -provider bvia -bench memreg
//	vibe -provider clan -bench logp
//	vibe -bench suite -quick -parallel 4
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"vibe/internal/bench"
	"vibe/internal/core"
	"vibe/internal/logp"
	"vibe/internal/mp"
	"vibe/internal/provider"
	"vibe/internal/runner"
	"vibe/internal/table"
	"vibe/internal/via"
)

func main() {
	var (
		prov     = flag.String("provider", "clan", "provider model: mvia, bvia, clan, firmvia, iba")
		benchSel = flag.String("bench", "latency", "benchmark: latency, bandwidth, clientserver, nondata, memreg, memdereg, logp, mp, getput")
		sizesArg = flag.String("sizes", "", "comma-separated message sizes (default: paper ladder)")
		mode     = flag.String("mode", "poll", "completion mode: poll or block")
		useCQ    = flag.Bool("cq", false, "check receive completions via a completion queue")
		reuse    = flag.Int("reuse", -1, "buffer reuse percent 0..100 (-1 = base: one buffer)")
		vis      = flag.Int("vis", 1, "number of open VIs")
		segs     = flag.Int("segments", 1, "data segments per descriptor")
		rdma     = flag.Bool("rdma", false, "use RDMA writes with immediate data")
		notify   = flag.Bool("notify", false, "server handles receives via async handler")
		window   = flag.Int("window", 0, "sender pipeline bound for bandwidth (0 = unbounded)")
		rel      = flag.String("reliability", "unreliable", "unreliable, delivery, reception")
		req      = flag.Int("req", 16, "request size for clientserver")
		iters    = flag.Int("iters", 0, "override timed iterations")
		csv      = flag.Bool("csv", false, "emit CSV")
		parallel = flag.Int("parallel", runtime.NumCPU(), "worker count for -bench suite")
		quick    = flag.Bool("quick", false, "smaller sweeps for -bench suite")
	)
	flag.Parse()

	if *benchSel == "suite" {
		runSuite(*quick, *parallel)
		return
	}

	m, err := provider.ByNameExtended(*prov)
	if err != nil {
		fatal(err)
	}
	cfg := core.DefaultConfig(m)
	if *iters > 0 {
		cfg.Iters = *iters
	}

	o := core.XferOpts{
		RecvViaCQ: *useCQ,
		ActiveVIs: *vis,
		Segments:  *segs,
		RDMA:      *rdma,
		Notify:    *notify,
		Window:    *window,
	}
	if *mode == "block" {
		o.Mode = core.Blocking
	}
	if *reuse >= 0 {
		o.VaryBuffers = true
		o.ReusePct = *reuse
	}
	switch *rel {
	case "unreliable":
	case "delivery":
		o.Reliability = via.ReliableDelivery
	case "reception":
		o.Reliability = via.ReliableReception
	default:
		fatal(fmt.Errorf("unknown reliability %q", *rel))
	}

	sizes := bench.SizeLadder()
	if *sizesArg != "" {
		sizes = nil
		for _, s := range strings.Split(*sizesArg, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fatal(fmt.Errorf("bad size %q: %v", s, err))
			}
			sizes = append(sizes, n)
		}
	}

	emit := func(t *table.Table) {
		if *csv {
			t.RenderCSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
	}

	switch *benchSel {
	case "latency":
		lat, cpuU, err := core.LatencySweep(cfg, sizes, o)
		if err != nil {
			fatal(err)
		}
		t := table.New(fmt.Sprintf("%s latency (%s)", m.Name, o.Mode),
			"size (bytes)", "latency (us)", "CPU (%)")
		for i, p := range lat.Points {
			t.AddRow(int(p.X), p.Y, cpuU.Points[i].Y)
		}
		emit(t)
	case "bandwidth":
		bw, cpuU, err := core.BandwidthSweep(cfg, sizes, o)
		if err != nil {
			fatal(err)
		}
		t := table.New(fmt.Sprintf("%s bandwidth (%s)", m.Name, o.Mode),
			"size (bytes)", "bandwidth (MB/s)", "CPU (%)")
		for i, p := range bw.Points {
			t.AddRow(int(p.X), p.Y, cpuU.Points[i].Y)
		}
		emit(t)
	case "clientserver":
		s, err := core.ClientServer(cfg, *req, sizes)
		if err != nil {
			fatal(err)
		}
		t := table.New(fmt.Sprintf("%s client-server, %dB requests", m.Name, *req),
			"reply size (bytes)", "transactions/s")
		for _, p := range s.Points {
			t.AddRow(int(p.X), p.Y)
		}
		emit(t)
	case "nondata":
		c, err := core.NonData(cfg)
		if err != nil {
			fatal(err)
		}
		t := table.New(fmt.Sprintf("%s non-data transfer costs (us)", m.Name), "operation", "cost")
		t.AddRow("create VI", c.CreateVi)
		t.AddRow("destroy VI", c.DestroyVi)
		t.AddRow("establish connection", c.EstablishConn)
		t.AddRow("tear down connection", c.TeardownConn)
		t.AddRow("create CQ", c.CreateCq)
		t.AddRow("destroy CQ", c.DestroyCq)
		emit(t)
	case "memreg", "memdereg":
		var s *bench.Series
		var err error
		if *benchSel == "memreg" {
			s, err = core.MemRegister(cfg, core.RegLadder())
		} else {
			s, err = core.MemDeregister(cfg, core.RegLadder())
		}
		if err != nil {
			fatal(err)
		}
		t := table.New(fmt.Sprintf("%s %s cost", m.Name, *benchSel), "buffer (bytes)", "cost (us)")
		for _, p := range s.Points {
			t.AddRow(int(p.X), p.Y)
		}
		emit(t)
	case "mp":
		s, err := core.MPLatency(cfg, sizes, mp.DefaultConfig())
		if err != nil {
			fatal(err)
		}
		t := table.New(fmt.Sprintf("%s message-passing layer latency", m.Name),
			"size (bytes)", "latency (us)")
		for _, p := range s.Points {
			t.AddRow(int(p.X), p.Y)
		}
		emit(t)
	case "getput":
		t := table.New(fmt.Sprintf("%s get/put layer latency", m.Name),
			"size (bytes)", "put (us)", "get (us)")
		for _, size := range sizes {
			put, get, err := core.GPLatency(cfg, size)
			if err != nil {
				fatal(err)
			}
			t.AddRow(size, put, get)
		}
		emit(t)
	case "logp":
		ins, err := logp.Explain(m)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s LogP parameters: %v\n", m.Name, ins.Params)
		fmt.Printf("LogP-predicted small-message latency is constant, yet:\n")
		fmt.Printf("  base 4B latency:            %8.2f us\n", ins.BaseLatencyUs)
		fmt.Printf("  with 16 open VIs:           %8.2f us\n", ins.LatencyAt16VIs)
		fmt.Printf("  with 0%% buffer reuse:       %8.2f us\n", ins.LatencyAt0Reuse)
		fmt.Printf("This spread is what VIBe measures and LogP cannot (paper §1).\n")
	default:
		fatal(fmt.Errorf("unknown benchmark %q", *benchSel))
	}
}

// runSuite executes the whole experiment registry across the runner's
// worker pool, printing a one-line status per cell in registry order.
func runSuite(quick bool, workers int) {
	exps := core.Experiments()
	cells := runner.Run(exps, runner.Options{Quick: quick, Workers: workers})
	for i := range cells {
		c := &cells[i]
		switch {
		case c.Skipped():
			fmt.Printf("%-8s skipped\n", c.ID)
		case c.Err != nil:
			fmt.Printf("%-8s FAILED: %v\n", c.ID, c.Err)
		default:
			fmt.Printf("%-8s ok  %8.1f ms  %s\n", c.ID, float64(c.Wall.Microseconds())/1000, exps[i].Title)
		}
	}
	if err := runner.FirstError(cells); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vibe:", err)
	os.Exit(1)
}
