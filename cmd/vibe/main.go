// Command vibe runs individual VIBe micro-benchmarks against a simulated
// VIA provider, mirroring how the paper's suite is driven.
//
// Usage examples:
//
//	vibe -provider clan -bench latency
//	vibe -provider bvia -bench latency -reuse 0 -sizes 4,1024,28672
//	vibe -provider bvia -bench bandwidth -vis 16
//	vibe -provider mvia -bench latency -mode block -cq
//	vibe -provider clan -bench clientserver -req 16
//	vibe -provider clan -bench latency -set DoorbellCost=2us
//	vibe -provider clan -bench latency -sweep TLBCapacity=8,32,128
//	vibe -provider mvia -bench bandwidth -scenario tuned.json
//	vibe -provider clan -bench bandwidth -reliability delivery -fault plan.json
//	vibe -bench suite -quick -parallel 4
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"vibe/internal/bench"
	"vibe/internal/core"
	"vibe/internal/fault"
	"vibe/internal/logp"
	"vibe/internal/metrics"
	"vibe/internal/mp"
	"vibe/internal/prof"
	"vibe/internal/provider"
	"vibe/internal/runner"
	"vibe/internal/table"
	"vibe/internal/trace"
	"vibe/internal/via"
)

// benchArgs is everything a benchmark needs to run one scenario cell:
// cfg.Model is already the scenario-derived model.
type benchArgs struct {
	cfg   core.Config
	o     core.XferOpts
	sizes []int
	req   int
}

// benchSpec is one registry entry. The help string for -bench is derived
// from the registry, so adding a benchmark here is the single change.
type benchSpec struct {
	name string
	run  func(a benchArgs) (*core.Report, error)
}

func benches() []benchSpec {
	return []benchSpec{
		{"latency", func(a benchArgs) (*core.Report, error) {
			lat, cpuU, err := core.LatencySweep(a.cfg, a.sizes, a.o)
			if err != nil {
				return nil, err
			}
			t := table.New(fmt.Sprintf("%s latency (%s)", a.cfg.Model.Name, a.o.Mode),
				"size (bytes)", "latency (us)", "CPU (%)")
			for i, p := range lat.Points {
				t.AddRow(int(p.X), p.Y, cpuU.Points[i].Y)
			}
			return &core.Report{Tables: []*table.Table{t}}, nil
		}},
		{"bandwidth", func(a benchArgs) (*core.Report, error) {
			bw, cpuU, err := core.BandwidthSweep(a.cfg, a.sizes, a.o)
			if err != nil {
				return nil, err
			}
			t := table.New(fmt.Sprintf("%s bandwidth (%s)", a.cfg.Model.Name, a.o.Mode),
				"size (bytes)", "bandwidth (MB/s)", "CPU (%)")
			for i, p := range bw.Points {
				t.AddRow(int(p.X), p.Y, cpuU.Points[i].Y)
			}
			return &core.Report{Tables: []*table.Table{t}}, nil
		}},
		{"clientserver", func(a benchArgs) (*core.Report, error) {
			s, err := core.ClientServer(a.cfg, a.req, a.sizes)
			if err != nil {
				return nil, err
			}
			t := table.New(fmt.Sprintf("%s client-server, %dB requests", a.cfg.Model.Name, a.req),
				"reply size (bytes)", "transactions/s")
			for _, p := range s.Points {
				t.AddRow(int(p.X), p.Y)
			}
			return &core.Report{Tables: []*table.Table{t}}, nil
		}},
		{"nondata", func(a benchArgs) (*core.Report, error) {
			c, err := core.NonData(a.cfg)
			if err != nil {
				return nil, err
			}
			t := table.New(fmt.Sprintf("%s non-data transfer costs (us)", a.cfg.Model.Name),
				"operation", "cost")
			t.AddRow("create VI", c.CreateVi)
			t.AddRow("destroy VI", c.DestroyVi)
			t.AddRow("establish connection", c.EstablishConn)
			t.AddRow("tear down connection", c.TeardownConn)
			t.AddRow("create CQ", c.CreateCq)
			t.AddRow("destroy CQ", c.DestroyCq)
			return &core.Report{Tables: []*table.Table{t}}, nil
		}},
		{"memreg", func(a benchArgs) (*core.Report, error) {
			s, err := core.MemRegister(a.cfg, core.RegLadder())
			if err != nil {
				return nil, err
			}
			return regReport(a.cfg.Model.Name, "memreg", s), nil
		}},
		{"memdereg", func(a benchArgs) (*core.Report, error) {
			s, err := core.MemDeregister(a.cfg, core.RegLadder())
			if err != nil {
				return nil, err
			}
			return regReport(a.cfg.Model.Name, "memdereg", s), nil
		}},
		{"logp", func(a benchArgs) (*core.Report, error) {
			ins, err := logp.Explain(a.cfg.Model)
			if err != nil {
				return nil, err
			}
			return &core.Report{Notes: []string{
				fmt.Sprintf("%s LogP parameters: %v", a.cfg.Model.Name, ins.Params),
				"LogP-predicted small-message latency is constant, yet:",
				fmt.Sprintf("  base 4B latency:            %8.2f us", ins.BaseLatencyUs),
				fmt.Sprintf("  with 16 open VIs:           %8.2f us", ins.LatencyAt16VIs),
				fmt.Sprintf("  with 0%% buffer reuse:       %8.2f us", ins.LatencyAt0Reuse),
				"This spread is what VIBe measures and LogP cannot (paper §1).",
			}}, nil
		}},
		{"mp", func(a benchArgs) (*core.Report, error) {
			s, err := core.MPLatency(a.cfg, a.sizes, mp.DefaultConfig())
			if err != nil {
				return nil, err
			}
			t := table.New(fmt.Sprintf("%s message-passing layer latency", a.cfg.Model.Name),
				"size (bytes)", "latency (us)")
			for _, p := range s.Points {
				t.AddRow(int(p.X), p.Y)
			}
			return &core.Report{Tables: []*table.Table{t}}, nil
		}},
		{"getput", func(a benchArgs) (*core.Report, error) {
			t := table.New(fmt.Sprintf("%s get/put layer latency", a.cfg.Model.Name),
				"size (bytes)", "put (us)", "get (us)")
			for _, size := range a.sizes {
				put, get, err := core.GPLatency(a.cfg, size)
				if err != nil {
					return nil, err
				}
				t.AddRow(size, put, get)
			}
			return &core.Report{Tables: []*table.Table{t}}, nil
		}},
	}
}

func regReport(model, which string, s *bench.Series) *core.Report {
	t := table.New(fmt.Sprintf("%s %s cost", model, which), "buffer (bytes)", "cost (us)")
	for _, p := range s.Points {
		t.AddRow(int(p.X), p.Y)
	}
	return &core.Report{Tables: []*table.Table{t}}
}

func benchByName(name string) (benchSpec, bool) {
	for _, b := range benches() {
		if b.name == name {
			return b, true
		}
	}
	return benchSpec{}, false
}

// benchHelp and providerHelp derive the flag descriptions from the
// registries, so the help text cannot drift from what actually runs.
func benchHelp() string {
	names := make([]string, 0, len(benches())+1)
	for _, b := range benches() {
		names = append(names, b.name)
	}
	names = append(names, "suite")
	return "benchmark: " + strings.Join(names, ", ")
}

func providerHelp() string {
	return "provider model: " + strings.Join(provider.Names(), ", ")
}

// repeatedFlag collects every occurrence of a repeatable string flag.
type repeatedFlag []string

func (r *repeatedFlag) String() string     { return strings.Join(*r, " ") }
func (r *repeatedFlag) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	var sets, sweeps repeatedFlag
	var (
		prov         = flag.String("provider", "clan", providerHelp())
		benchSel     = flag.String("bench", "latency", benchHelp())
		scenarioPath = flag.String("scenario", "", "JSON scenario file: {\"base\":..., \"set\":{...}, \"run\":{...}}")
		faultPath    = flag.String("fault", "", "JSON fault plan file installed into every simulated system (wins over the scenario file's plan)")
		sizesArg     = flag.String("sizes", "", "comma-separated message sizes (default: paper ladder)")
		mode         = flag.String("mode", "poll", "completion mode: poll or block")
		useCQ        = flag.Bool("cq", false, "check receive completions via a completion queue")
		reuse        = flag.Int("reuse", -1, "buffer reuse percent 0..100 (-1 = base: one buffer)")
		vis          = flag.Int("vis", 1, "number of open VIs")
		segs         = flag.Int("segments", 1, "data segments per descriptor")
		rdma         = flag.Bool("rdma", false, "use RDMA writes with immediate data")
		notify       = flag.Bool("notify", false, "server handles receives via async handler")
		window       = flag.Int("window", 0, "sender pipeline bound for bandwidth (0 = unbounded)")
		rel          = flag.String("reliability", "unreliable", "unreliable, delivery, reception")
		req          = flag.Int("req", 16, "request size for clientserver")
		iters        = flag.Int("iters", 0, "override timed iterations")
		csv          = flag.Bool("csv", false, "emit CSV")
		parallel     = flag.Int("parallel", runtime.NumCPU(), "worker count for -bench suite and -sweep cells")
		quick        = flag.Bool("quick", false, "smaller sweeps for -bench suite")
		params       = flag.Bool("params", false, "list the model parameter catalog (-set/-sweep names) and exit")
		metricsOn    = flag.Bool("metrics", false, "print per-component simulation counters after the run")
		metricsOut   = flag.String("metrics-out", "", "write the final merged metrics snapshot as key-sorted JSON (implies metric collection)")
		progress     = flag.Bool("progress", false, "with -bench suite, print a per-cell progress line to stderr as cells complete")
		traceOut     = flag.String("trace-out", "", "write a Chrome trace-event JSON file (chrome://tracing, Perfetto); forces -parallel 1")
		spanSample   = flag.Int("span-sample", 1, "with -metrics/-trace-out, record every Nth message's lifecycle span (1 = every message, 0 = disable)")
		profileOut   = flag.String("profile-out", "", "write a folded-stack virtual-time profile (flamegraph/pprof input)")
		topo         = flag.String("topo", "", "fabric topology: crossbar, fattree, dragonfly, torus3d (shorthand for -set NetTopology=...)")
		route        = flag.String("route", "", "multipath route policy: failover, adaptive (shorthand for -set NetRoutePolicy=...)")
	)
	flag.Var(&sets, "set", "override a model parameter, e.g. -set DoorbellCost=2us (repeatable; see provider catalog)")
	flag.Var(&sweeps, "sweep", "sweep a parameter over values, e.g. -sweep TLBCapacity=8,32,128 (repeatable; cells form a grid)")
	flag.Parse()

	if *params {
		for _, p := range provider.Params() {
			fmt.Printf("%-19s %-8s %-22s %s\n", p.Name, p.Kind, p.Unit, p.Doc)
		}
		return
	}

	spec, err := buildSpec(*scenarioPath, sets, *faultPath)
	if err != nil {
		fatal(err)
	}
	if *topo != "" {
		if spec.Set == nil {
			spec.Set = map[string]string{}
		}
		spec.Set["NetTopology"] = *topo
	}
	if *route != "" {
		if spec.Set == nil {
			spec.Set = map[string]string{}
		}
		spec.Set["NetRoutePolicy"] = *route
	}
	specs, err := core.ExpandSweeps(spec, sweeps)
	if err != nil {
		fatal(err)
	}
	scs, err := core.CompileScenarios(specs, *quick)
	if err != nil {
		fatal(err)
	}

	// Instrumentation: a per-scenario metrics collector (safe to share
	// across the runner's workers) and, for tracing, one recorder — a
	// single-writer structure, so tracing pins the run to one worker.
	var rec *trace.Recorder
	if *traceOut != "" {
		rec = &trace.Recorder{Limit: 1 << 20}
		*parallel = 1
	}
	var profile *prof.Profile
	if *profileOut != "" {
		profile = prof.New()
	}
	collectMetrics := *metricsOn || *metricsOut != ""
	collectors := make([]*metrics.Collector, len(scs))
	if collectMetrics || rec != nil || profile != nil {
		for i, sc := range scs {
			in := &core.Instr{Trace: rec, SpanSample: *spanSample}
			if collectMetrics {
				in.Metrics = metrics.NewCollector()
				collectors[i] = in.Metrics
			}
			sc.Instr = in
		}
	}
	finishInstr := func() {
		for i, c := range collectors {
			if c == nil || !*metricsOn {
				continue
			}
			fmt.Printf("\n--- metrics: %s (%d simulated systems) ---\n", scs[i].Label(), c.Systems())
			c.Snapshot().Render(os.Stdout)
		}
		if *metricsOut != "" {
			if err := writeMetricsOut(*metricsOut, collectors); err != nil {
				fatal(err)
			}
			fmt.Printf("metrics written to %s\n", *metricsOut)
		}
		if rec != nil {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal(err)
			}
			if err := rec.WriteChrome(f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("trace written to %s (%d events, %d dropped)\n", *traceOut, rec.Len(), rec.Dropped())
		}
		if profile != nil {
			f, err := os.Create(*profileOut)
			if err != nil {
				fatal(err)
			}
			if err := profile.WriteFolded(f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("profile written to %s (%d stacks)\n", *profileOut, profile.Len())
		}
	}

	if *benchSel == "suite" {
		exps := core.Experiments()
		if profile != nil {
			exps = core.ProfiledExperiments(exps, profile)
		}
		err := runSuite(exps, scs, *parallel, *progress)
		finishInstr()
		if err != nil {
			fatal(err)
		}
		return
	}

	b, ok := benchByName(*benchSel)
	if !ok {
		fatal(fmt.Errorf("unknown benchmark %q (have: %s)", *benchSel, benchHelp()))
	}

	// The scenario file's base model is the default provider; an explicit
	// -provider flag wins over it.
	baseName := *prov
	if spec.Base != "" && !flagWasSet("provider") {
		baseName = spec.Base
	}
	m, err := provider.ByNameExtended(baseName)
	if err != nil {
		fatal(err)
	}

	o := core.XferOpts{
		RecvViaCQ: *useCQ,
		ActiveVIs: *vis,
		Segments:  *segs,
		RDMA:      *rdma,
		Notify:    *notify,
		Window:    *window,
	}
	if *mode == "block" {
		o.Mode = core.Blocking
	}
	if *reuse >= 0 {
		o.VaryBuffers = true
		o.ReusePct = *reuse
	}
	switch *rel {
	case "unreliable":
	case "delivery":
		o.Reliability = via.ReliableDelivery
	case "reception":
		o.Reliability = via.ReliableReception
	default:
		fatal(fmt.Errorf("unknown reliability %q", *rel))
	}

	sizes := bench.SizeLadder()
	if *sizesArg != "" {
		sizes = nil
		for _, s := range strings.Split(*sizesArg, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fatal(fmt.Errorf("bad size %q: %v", s, err))
			}
			sizes = append(sizes, n)
		}
	}

	// Each (benchmark, scenario) cell runs as a synthetic experiment on the
	// runner's pool, so sweep grids parallelize exactly like the suite.
	exp := &core.Experiment{
		ID:    b.name,
		Title: b.name,
		Run: func(sc *core.Scenario) (*core.Report, error) {
			cfg := sc.Config(m)
			if *iters > 0 {
				cfg.Iters = *iters
			}
			return b.run(benchArgs{cfg: cfg, o: o, sizes: sizes, req: *req})
		},
	}
	exps := []*core.Experiment{exp}
	if profile != nil {
		exps = core.ProfiledExperiments(exps, profile)
	}
	grid := runner.RunGrid(exps, scs, runner.Options{Workers: *parallel})
	for si, row := range grid {
		if len(scs) > 1 {
			fmt.Printf("--- scenario: %s ---\n", scs[si].Label())
		}
		c := &row[0]
		if c.Err != nil {
			if c.Skipped() {
				continue
			}
			fatal(c.Err)
		}
		for _, t := range c.Report.Tables {
			if *csv {
				t.RenderCSV(os.Stdout)
			} else {
				t.Render(os.Stdout)
			}
		}
		for _, n := range c.Report.Notes {
			fmt.Println(n)
		}
		if len(scs) > 1 {
			fmt.Println()
		}
	}
	finishInstr()
	if err := runner.FirstGridError(grid); err != nil {
		os.Exit(1)
	}
}

// buildSpec assembles the scenario spec from -scenario, -set and -fault
// flags; -set entries and the -fault plan win over the file's.
func buildSpec(path string, sets []string, faultPath string) (core.ScenarioSpec, error) {
	var spec core.ScenarioSpec
	if path != "" {
		s, err := core.LoadScenarioSpec(path)
		if err != nil {
			return spec, err
		}
		spec = s
	}
	if len(sets) > 0 {
		kv, err := provider.ParseSet(sets)
		if err != nil {
			return spec, err
		}
		if spec.Set == nil {
			spec.Set = map[string]string{}
		}
		for k, v := range kv {
			spec.Set[k] = v
		}
	}
	if faultPath != "" {
		p, err := fault.Load(faultPath)
		if err != nil {
			return spec, err
		}
		spec.Fault = p
	}
	return spec, nil
}

func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// runSuite executes the given experiments (times each scenario in the
// grid) across the runner's worker pool, printing a one-line status per
// cell in registry order. With progress enabled, a live per-cell line
// goes to stderr as cells complete, in dispatch order.
func runSuite(exps []*core.Experiment, scs []*core.Scenario, workers int, progress bool) error {
	opt := runner.Options{Workers: workers}
	if progress {
		opt.Progress = func(ev runner.ProgressEvent) {
			status := "ok"
			switch {
			case ev.Skipped:
				status = "skipped"
			case ev.Err != nil:
				status = "FAILED"
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %-8s %-7s %s\n", ev.Done, ev.Total, ev.Experiment, status, ev.Scenario)
		}
	}
	grid := runner.RunGrid(exps, scs, opt)
	for si, row := range grid {
		if len(scs) > 1 {
			fmt.Printf("=== scenario: %s ===\n", scs[si].Label())
		}
		for i := range row {
			c := &row[i]
			switch {
			case c.Skipped():
				fmt.Printf("%-8s skipped\n", c.ID)
			case c.Err != nil:
				fmt.Printf("%-8s FAILED: %v\n", c.ID, c.Err)
			default:
				fmt.Printf("%-8s ok  %8.1f ms  %s\n", c.ID, float64(c.Wall.Microseconds())/1000, exps[i].Title)
			}
		}
	}
	return runner.FirstGridError(grid)
}

// writeMetricsOut writes the cross-scenario merged snapshot as key-sorted
// JSON, the machine-readable sibling of the rendered -metrics tables.
func writeMetricsOut(path string, collectors []*metrics.Collector) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := metrics.MergedSnapshot(collectors...).WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vibe:", err)
	os.Exit(1)
}
