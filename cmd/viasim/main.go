// Command viasim inspects the simulated VIA providers: it dumps a
// provider's cost model and network parameters, runs an ad-hoc ping-pong
// with a packet-level event trace, and reports fabric counters — the
// debugging companion to the vibe benchmark driver.
//
// Usage:
//
//	viasim -provider bvia -dump          # print the cost model
//	viasim -provider clan -ping -size 1024
//	viasim -provider bvia -ping -trace   # ping with event trace
package main

import (
	"flag"
	"fmt"
	"os"

	"vibe/internal/fabric"
	"vibe/internal/provider"
	"vibe/internal/sim"
	"vibe/internal/table"
	"vibe/internal/trace"
	"vibe/internal/via"
)

func main() {
	var (
		prov      = flag.String("provider", "clan", "provider model: mvia, bvia, clan, firmvia, iba")
		dump      = flag.Bool("dump", false, "dump the provider cost model")
		ping      = flag.Bool("ping", false, "run a single ping-pong")
		size      = flag.Int("size", 64, "ping message size")
		doTrace   = flag.Bool("trace", false, "print the event trace of the ping")
		topo      = flag.String("topo", "", "fabric topology: crossbar, fattree, dragonfly, torus3d (default: the model's)")
		degree    = flag.Int("degree", 0, "topology host-attachment degree (0 = topology default)")
		switchBuf = flag.Int("switchbuf", 0, "switch output buffer in packets (0 = unbounded)")
		route     = flag.String("route", "", "multipath route policy: failover, adaptive (default: failover)")
		nodes     = flag.Int("nodes", 2, "hosts in the simulated cluster; ping runs host 0 <-> host nodes-1")
	)
	flag.Parse()

	m, err := provider.ByNameExtended(*prov)
	if err != nil {
		fatal(err)
	}
	if *topo != "" {
		m.Network.Topology = *topo
	}
	if *degree > 0 {
		m.Network.TopologyDegree = *degree
	}
	if *switchBuf > 0 {
		m.Network.SwitchBufPkts = *switchBuf
	}
	if *route != "" {
		m.Network.RoutePolicy = *route
	}
	if *nodes < 2 {
		fatal(fmt.Errorf("-nodes must be at least 2"))
	}
	if !*dump && !*ping {
		*dump = true
	}
	if *dump {
		dumpModel(m, *nodes)
	}
	if *ping {
		runPing(m, *nodes, *size, *doTrace)
	}
}

func dumpModel(m *provider.Model, nodes int) {
	t := table.New(fmt.Sprintf("provider %q cost model", m.Name), "parameter", "value")
	t.AddRow("network", m.Network.Name)
	t.AddRow("bandwidth (Gb/s)", m.Network.BandwidthBps/1e9)
	t.AddRow("link latency", m.Network.LinkLatency.String())
	t.AddRow("switch latency", m.Network.SwitchLatency.String())
	topo := fabric.BuildTopology(m.Network, nodes)
	t.AddRow("topology", topo.Name())
	t.AddRow(fmt.Sprintf("switches (%d hosts)", nodes), topo.Switches())
	if m.Network.SwitchBufPkts > 0 {
		t.AddRow("switch buffer (pkts)", m.Network.SwitchBufPkts)
	} else {
		t.AddRow("switch buffer (pkts)", "unbounded")
	}
	if p := m.Network.RoutePolicy; p != "" {
		t.AddRow("route policy", p)
	} else {
		t.AddRow("route policy", fabric.RouteFailover)
	}
	t.AddRow("wire MTU (bytes)", m.WireMTU)
	t.AddRow("max transfer (bytes)", m.MaxTransferSize)
	t.AddRow("max segments", m.MaxSegments)
	t.AddRow("translation at", m.TranslationAt.String())
	t.AddRow("tables in", m.TablesAt.String())
	t.AddRow("TLB capacity", m.TLBCapacity)
	t.AddRow("TLB policy", m.TLBPolicy.String())
	t.AddRow("host copies", m.HostCopies)
	t.AddRow("copy per byte", m.CopyPerByte.String())
	t.AddRow("post send", m.PostSendCost.String())
	t.AddRow("doorbell", m.DoorbellCost.String())
	t.AddRow("NIC doorbell proc", m.DoorbellProc.String())
	t.AddRow("NIC desc fetch", m.DescFetch.String())
	t.AddRow("NIC per fragment", m.PerFragment.String())
	t.AddRow("DMA per byte", m.DMAPerByte.String())
	t.AddRow("xlate hit", m.XlateHit.String())
	t.AddRow("xlate miss (host table)", m.XlateMissHostTable.String())
	t.AddRow("xlate (NIC table)", m.XlateNICTable.String())
	t.AddRow("poll sweep", m.PollSweep)
	t.AddRow("poll per VI", m.PollPerVI.String())
	t.AddRow("block wake", m.BlockWakeCost.String())
	t.AddRow("VI create", m.ViCreate.String())
	t.AddRow("conn request", m.ConnRequestCost.String())
	t.AddRow("mem reg base/page", fmt.Sprintf("%v + %v/page", m.MemRegBase, m.MemRegPerPage))
	t.AddRow("rdma write/read", fmt.Sprintf("%v/%v", m.SupportsRDMAWrite, m.SupportsRDMARead))
	t.Render(os.Stdout)
}

func runPing(m *provider.Model, nodes, size int, doTrace bool) {
	sys := via.NewSystem(m, nodes, 1)
	rec := &trace.Recorder{Limit: 10000}
	if doTrace {
		sys.Eng.SetTracer(rec)
	}
	tmo := 10 * sim.Second
	peer := fabric.NodeID(nodes - 1)
	var rtt sim.Duration

	sys.Go(0, "ping", func(ctx *via.Ctx) {
		nic := ctx.OpenNic()
		vi, err := nic.CreateVi(ctx, via.ViAttributes{}, nil, nil)
		if err != nil {
			fatal(err)
		}
		if err := vi.ConnectRequest(ctx, peer, "ping", tmo); err != nil {
			fatal(err)
		}
		buf := ctx.Malloc(size)
		h, err := nic.RegisterMem(ctx, buf)
		if err != nil {
			fatal(err)
		}
		buf.FillPattern(1)
		t0 := ctx.Now()
		if err := vi.PostRecv(ctx, via.SimpleRecv(buf, h, size)); err != nil {
			fatal(err)
		}
		if err := vi.PostSend(ctx, via.SimpleSend(buf, h, size)); err != nil {
			fatal(err)
		}
		if _, err := vi.SendWaitPoll(ctx); err != nil {
			fatal(err)
		}
		if _, err := vi.RecvWaitPoll(ctx); err != nil {
			fatal(err)
		}
		rtt = ctx.Now().Sub(t0)
	})
	sys.Go(int(peer), "pong", func(ctx *via.Ctx) {
		nic := ctx.OpenNic()
		vi, err := nic.CreateVi(ctx, via.ViAttributes{}, nil, nil)
		if err != nil {
			fatal(err)
		}
		buf := ctx.Malloc(size)
		h, err := nic.RegisterMem(ctx, buf)
		if err != nil {
			fatal(err)
		}
		if err := vi.PostRecv(ctx, via.SimpleRecv(buf, h, size)); err != nil {
			fatal(err)
		}
		req, err := nic.ConnectWait(ctx, "ping", tmo)
		if err != nil {
			fatal(err)
		}
		if err := req.Accept(ctx, vi); err != nil {
			fatal(err)
		}
		if _, err := vi.RecvWaitPoll(ctx); err != nil {
			fatal(err)
		}
		if err := vi.PostSend(ctx, via.SimpleSend(buf, h, size)); err != nil {
			fatal(err)
		}
		if _, err := vi.SendWaitPoll(ctx); err != nil {
			fatal(err)
		}
	})
	if err := sys.Run(); err != nil {
		fatal(err)
	}
	fmt.Printf("%s %dB ping-pong: RTT %v (one-way %.2fus)\n", m.Name, size, rtt, rtt.Micros()/2)
	fmt.Printf("fabric: %d packets sent, %d delivered, %d bytes\n",
		sys.Net.Sent, sys.Net.Delivered, sys.Net.BytesSent)
	if doTrace {
		rec.Dump(os.Stdout)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "viasim:", err)
	os.Exit(1)
}
