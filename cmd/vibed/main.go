// Command vibed is the VIBe benchmark service: a long-lived daemon that
// accepts scenario/sweep submissions over HTTP, runs them as jobs on the
// shared runner pool, and serves live progress (SSE), Prometheus metrics,
// and downloadable run artifacts.
//
// Usage:
//
//	vibed                        # listen on :8080, NumCPU workers
//	vibed -addr 127.0.0.1:9999   # explicit listen address
//	vibed -workers 4 -queue 32   # pool width and queue bound
//
// Submit a run and follow it:
//
//	curl -s -X POST localhost:8080/api/jobs \
//	     -d '{"quick": true, "experiments": ["T1","F1"]}'
//	curl -N localhost:8080/api/jobs/job-1/events
//	curl -s localhost:8080/api/jobs/job-1/artifacts/results.json
//	curl -s localhost:8080/metrics
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"vibe/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "HTTP listen address")
		workers = flag.Int("workers", runtime.NumCPU(), "runner pool width per job")
		queue   = flag.Int("queue", 16, "bound on queued jobs (full queue rejects with 503)")
	)
	flag.Parse()

	srv := serve.New(serve.Options{Workers: *workers, QueueCap: *queue})
	go srv.Run()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vibed:", err)
		os.Exit(1)
	}
	log.Printf("vibed: listening on %s (%d workers, queue %d)", ln.Addr(), *workers, *queue)

	hs := &http.Server{Handler: srv.Handler()}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("vibed: shutting down")
		hs.Close()
	}()
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "vibed:", err)
		os.Exit(1)
	}
	srv.Close()
}
