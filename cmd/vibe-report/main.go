// Command vibe-report regenerates the paper's tables and figures (and the
// suite's extensions and ablations) from the simulated VIA providers.
//
// Usage:
//
//	vibe-report                 # run every experiment
//	vibe-report -exp F3         # run one experiment (T1, F1..F7, TCQ, X*, A*)
//	vibe-report -list           # list experiment ids
//	vibe-report -quick          # smaller sweeps (smoke test)
//	vibe-report -csv            # emit CSV instead of charts
//	vibe-report -chart          # draw ASCII charts for series groups
//	vibe-report -json out.json  # also save machine-readable results
//	vibe-report -set DoorbellCost=2us          # override model parameters
//	vibe-report -scenario tuned.json           # load a scenario file
//	vibe-report -exp XLOSS -fault plan.json    # inject a fault plan everywhere
//	vibe-report -sweep TLBCapacity=8,32,128    # run the grid of scenarios
//	vibe-report -compare base.json -tol 0.05   # diff against a saved set
//	vibe-report -parallel 4     # run cells on 4 workers (default: NumCPU)
//	vibe-report -bench BENCH_suite.json   # time sequential vs parallel passes
//
// Experiments are independent simulations, so they run concurrently across
// a worker pool; output and saved results are assembled in registry order
// and are byte-identical to a sequential (-parallel 1) run. Sweep cells
// fan out across the same pool. Saved result sets record their scenario
// (base model, overrides, run config) as provenance, and -compare refuses
// to diff sets from different scenarios unless -force is given.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"vibe/internal/bench"
	"vibe/internal/core"
	"vibe/internal/fault"
	"vibe/internal/metrics"
	"vibe/internal/prof"
	"vibe/internal/provider"
	"vibe/internal/results"
	"vibe/internal/runner"
	"vibe/internal/table"
	"vibe/internal/trace"
)

// repeatedFlag collects every occurrence of a repeatable string flag.
type repeatedFlag []string

func (r *repeatedFlag) String() string     { return strings.Join(*r, " ") }
func (r *repeatedFlag) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	var sets, sweeps repeatedFlag
	var (
		exp          = flag.String("exp", "", "experiment id to run (default: all)")
		list         = flag.Bool("list", false, "list experiments and exit")
		quick        = flag.Bool("quick", false, "smaller sweeps")
		csv          = flag.Bool("csv", false, "emit series groups as CSV")
		chart        = flag.Bool("chart", false, "draw ASCII charts for series groups")
		jsonOut      = flag.String("json", "", "save results to this JSON file (the paper's results-repository format)")
		compare      = flag.String("compare", "", "diff results against this saved JSON baseline")
		force        = flag.Bool("force", false, "compare even when scenario provenance differs")
		label        = flag.String("label", "", "label recorded in the JSON result set")
		tol          = flag.Float64("tol", 0.02, "relative tolerance for -compare")
		parallel     = flag.Int("parallel", runtime.NumCPU(), "number of experiment cells run concurrently")
		scenarioPath = flag.String("scenario", "", "JSON scenario file: {\"base\":..., \"set\":{...}, \"run\":{...}}")
		faultPath    = flag.String("fault", "", "JSON fault plan file installed into every simulated system (wins over the scenario file's plan)")
		benchOut     = flag.String("bench", "", "time sequential vs parallel and write the report to this JSON file (use with -quick for a fast pass)")
		baseMs       = flag.Float64("bench-baseline-ms", 0, "earlier revision's sequential wall time in ms; with -bench, speedup is computed against it")
		baseLabel    = flag.String("bench-baseline-label", "", "label describing the -bench-baseline-ms revision")
		benchGate    = flag.String("bench-gate", "", "with -bench: fail if the dispatch speedup regresses >20% vs this committed bench report")
		metricsOn    = flag.Bool("metrics", false, "print per-component simulation counters and embed them in -json output")
		metricsOut   = flag.String("metrics-out", "", "write the final merged metrics snapshot as key-sorted JSON (implies metric collection)")
		traceOut     = flag.String("trace-out", "", "write a Chrome trace-event JSON file (chrome://tracing, Perfetto); forces -parallel 1")
		spanSample   = flag.Int("span-sample", 1, "with -metrics/-trace-out, record every Nth message's lifecycle span (1 = every message, 0 = disable)")
		profileOut   = flag.String("profile-out", "", "write a folded-stack virtual-time profile (flamegraph input) across all experiments")
		profileTop   = flag.Int("profile-top", 8, "with -profile-out, print each experiment's top N components")
	)
	flag.Var(&sets, "set", "override a model parameter, e.g. -set DoorbellCost=2us (repeatable)")
	flag.Var(&sweeps, "sweep", "sweep a parameter over values, e.g. -sweep TLBCapacity=8,32,128 (repeatable; cells form a grid)")
	flag.Parse()

	exps := core.Experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-6s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp != "" {
		e, err := core.ExperimentByID(strings.ToUpper(*exp))
		if err != nil {
			fatal(err)
		}
		exps = []*core.Experiment{e}
	}

	spec, err := buildSpec(*scenarioPath, sets, *faultPath)
	if err != nil {
		fatal(err)
	}
	specs, err := core.ExpandSweeps(spec, sweeps)
	if err != nil {
		fatal(err)
	}
	scs, err := core.CompileScenarios(specs, *quick)
	if err != nil {
		fatal(err)
	}

	// Instrumentation: a per-scenario metrics collector (safe to share
	// across the runner's workers) and, for tracing, one recorder — a
	// single-writer structure, so tracing pins the run to one worker.
	var rec *trace.Recorder
	if *traceOut != "" {
		rec = &trace.Recorder{Limit: 1 << 20}
		*parallel = 1
	}
	collectMetrics := *metricsOn || *metricsOut != ""
	collectors := make([]*metrics.Collector, len(scs))
	if collectMetrics || rec != nil {
		for i, sc := range scs {
			in := &core.Instr{Trace: rec, SpanSample: *spanSample}
			if collectMetrics {
				in.Metrics = metrics.NewCollector()
				collectors[i] = in.Metrics
			}
			sc.Instr = in
		}
	}
	// The profile is shared across workers; ProfiledExperiments scopes
	// each experiment's attribution under its ID.
	var profile *prof.Profile
	if *profileOut != "" {
		profile = prof.New()
		exps = core.ProfiledExperiments(exps, profile)
	}

	if *benchOut != "" {
		if len(scs) > 1 {
			fatal(fmt.Errorf("-bench times one scenario; drop -sweep"))
		}
		b, err := runner.BenchSuite(exps, runner.Options{Quick: *quick, Workers: *parallel, Scenario: scs[0]}, *label)
		if err != nil {
			fatal(err)
		}
		if *baseMs > 0 {
			b.SetBaseline(*baseLabel, *baseMs)
		}
		d, err := runner.BenchDispatch()
		if err != nil {
			fatal(err)
		}
		b.Dispatch = d
		dr, err := runner.BenchDispatchRouted()
		if err != nil {
			fatal(err)
		}
		b.DispatchRouted = dr
		if err := b.Save(*benchOut); err != nil {
			fatal(err)
		}
		fmt.Printf("%d experiments: sequential %.1f ms, parallel %.1f ms (%d workers)\n",
			len(b.Experiments), b.SequentialMs, b.ParallelMs, b.Workers)
		if b.BaselineSequentialMs > 0 {
			fmt.Printf("speedup vs baseline %q (%.1f ms): %.2fx\n", b.BaselineLabel, b.BaselineSequentialMs, b.Speedup)
		} else {
			fmt.Printf("parallel speedup: %.2fx\n", b.Speedup)
		}
		fmt.Printf("dispatch (%s): goroutine %.0f ev/s, actor %.0f ev/s, speedup %.2fx\n",
			d.Scenario, d.GoroutineEvPerSec, d.ActorEvPerSec, d.Speedup)
		fmt.Printf("dispatch (%s): goroutine %.0f ev/s, actor %.0f ev/s, speedup %.2fx\n",
			dr.Scenario, dr.GoroutineEvPerSec, dr.ActorEvPerSec, dr.Speedup)
		fmt.Printf("bench report saved to %s\n", *benchOut)
		if *benchGate != "" {
			base, err := runner.LoadSuiteBench(*benchGate)
			if err != nil {
				fatal(err)
			}
			if err := b.GateDispatch(base, 0.20); err != nil {
				fatal(err)
			}
			fmt.Printf("dispatch gate passed: %.2fx vs committed %.2fx\n", d.Speedup, base.Dispatch.Speedup)
		}
		return
	}

	grid := runner.RunGrid(exps, scs, runner.Options{Workers: *parallel})
	if err := runner.FirstGridError(grid); err != nil {
		fatal(err)
	}

	exitCode := 0
	for si, row := range grid {
		if len(scs) > 1 {
			fmt.Printf("########## scenario: %s ##########\n\n", scs[si].Label())
		}
		set := &results.Set{Label: *label, Scenario: results.ProvenanceOf(scs[si])}
		if collectors[si] != nil {
			set.Metrics = collectors[si].Snapshot().Map()
		}
		for i, e := range exps {
			fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
			fmt.Printf("paper: %s\n\n", e.PaperClaim)
			rep := row[i].Report
			for _, t := range rep.Tables {
				t.Render(os.Stdout)
				fmt.Println()
			}
			for _, g := range rep.Groups {
				if *csv {
					fmt.Printf("# %s\n", g.Title)
					g.RenderCSV(os.Stdout)
					fmt.Println()
					continue
				}
				t := groupTable(g)
				t.Render(os.Stdout)
				fmt.Println()
				if *chart {
					c := table.NewChart(g.Title, g.Series[0].XLabel, g.Series[0].YLabel)
					for _, s := range g.Series {
						xs, ys := s.XY()
						c.Add(s.Name, xs, ys)
					}
					c.Render(os.Stdout, 72, 16)
					fmt.Println()
				}
			}
			for _, n := range rep.Notes {
				fmt.Printf("note: %s\n", n)
			}
			fmt.Println()
			set.Experiments = append(set.Experiments, results.FromReport(e.ID, rep))
		}

		if c := collectors[si]; c != nil && *metricsOn {
			fmt.Printf("--- metrics: %s (%d simulated systems) ---\n", scs[si].Label(), c.Systems())
			c.Snapshot().Render(os.Stdout)
			fmt.Println()
		}
		if *jsonOut != "" {
			path := cellPath(*jsonOut, si, len(scs))
			if err := results.Save(path, set); err != nil {
				fatal(err)
			}
			fmt.Printf("results saved to %s\n", path)
		}
		if *compare != "" {
			base, err := results.Load(*compare)
			if err != nil {
				fatal(err)
			}
			diffs, err := results.CompareChecked(base, set, *tol, *force)
			if err != nil {
				fatal(err)
			}
			results.Render(os.Stdout, diffs, *tol)
			if len(diffs) > 0 {
				exitCode = 2
			}
		}
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fatal(err)
		}
		if err := metrics.MergedSnapshot(collectors...).WriteJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("metrics written to %s\n", *metricsOut)
	}
	if rec != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteChrome(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s (%d events, %d dropped)\n", *traceOut, rec.Len(), rec.Dropped())
	}
	if profile != nil {
		for _, e := range exps {
			profile.RenderTop(os.Stdout, e.ID, *profileTop)
		}
		f, err := os.Create(*profileOut)
		if err != nil {
			fatal(err)
		}
		if err := profile.WriteFolded(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("profile written to %s (%d stacks)\n", *profileOut, profile.Len())
	}
	os.Exit(exitCode)
}

// buildSpec assembles the scenario spec from -scenario, -set and -fault
// flags; -set entries and the -fault plan win over the file's.
func buildSpec(path string, sets []string, faultPath string) (core.ScenarioSpec, error) {
	var spec core.ScenarioSpec
	if path != "" {
		s, err := core.LoadScenarioSpec(path)
		if err != nil {
			return spec, err
		}
		spec = s
	}
	if len(sets) > 0 {
		kv, err := provider.ParseSet(sets)
		if err != nil {
			return spec, err
		}
		if spec.Set == nil {
			spec.Set = map[string]string{}
		}
		for k, v := range kv {
			spec.Set[k] = v
		}
	}
	if faultPath != "" {
		p, err := fault.Load(faultPath)
		if err != nil {
			return spec, err
		}
		spec.Fault = p
	}
	return spec, nil
}

// cellPath derives a per-cell output path for sweep grids: out.json of a
// three-cell sweep becomes out.cell0.json, out.cell1.json, out.cell2.json.
func cellPath(path string, i, n int) string {
	if n == 1 {
		return path
	}
	ext := filepath.Ext(path)
	return fmt.Sprintf("%s.cell%d%s", strings.TrimSuffix(path, ext), i, ext)
}

// groupTable renders a series group as a wide table: the x column plus one
// column per series, rows being the union of x values.
func groupTable(g *bench.Group) *table.Table {
	headers := []string{g.Series[0].XLabel}
	for _, s := range g.Series {
		headers = append(headers, s.Name)
	}
	t := table.New(g.Title+" ("+g.Series[0].YLabel+")", headers...)
	xset := map[float64]bool{}
	for _, s := range g.Series {
		for _, p := range s.Points {
			xset[p.X] = true
		}
	}
	xs := make([]float64, 0, len(xset))
	for x := range xset {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	for _, x := range xs {
		row := []interface{}{x}
		for _, s := range g.Series {
			if y, ok := s.At(x); ok {
				row = append(row, y)
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	return t
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vibe-report:", err)
	os.Exit(1)
}
