// Command vibe-report regenerates the paper's tables and figures (and the
// suite's extensions and ablations) from the simulated VIA providers.
//
// Usage:
//
//	vibe-report                 # run every experiment
//	vibe-report -exp F3         # run one experiment (T1, F1..F7, TCQ, X*, A*)
//	vibe-report -list           # list experiment ids
//	vibe-report -quick          # smaller sweeps (smoke test)
//	vibe-report -csv            # emit CSV instead of charts
//	vibe-report -chart          # draw ASCII charts for series groups
//	vibe-report -json out.json  # also save machine-readable results
//	vibe-report -compare base.json -tol 0.05   # diff against a saved set
//	vibe-report -parallel 4     # run cells on 4 workers (default: NumCPU)
//	vibe-report -bench BENCH_suite.json   # time sequential vs parallel passes
//
// Experiments are independent simulations, so they run concurrently across
// a worker pool; output and saved results are assembled in registry order
// and are byte-identical to a sequential (-parallel 1) run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"vibe/internal/bench"
	"vibe/internal/core"
	"vibe/internal/results"
	"vibe/internal/runner"
	"vibe/internal/table"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id to run (default: all)")
		list      = flag.Bool("list", false, "list experiments and exit")
		quick     = flag.Bool("quick", false, "smaller sweeps")
		csv       = flag.Bool("csv", false, "emit series groups as CSV")
		chart     = flag.Bool("chart", false, "draw ASCII charts for series groups")
		jsonOut   = flag.String("json", "", "save results to this JSON file (the paper's results-repository format)")
		compare   = flag.String("compare", "", "diff results against this saved JSON baseline")
		label     = flag.String("label", "", "label recorded in the JSON result set")
		tol       = flag.Float64("tol", 0.02, "relative tolerance for -compare")
		parallel  = flag.Int("parallel", runtime.NumCPU(), "number of experiment cells run concurrently")
		benchOut  = flag.String("bench", "", "time sequential vs parallel and write the report to this JSON file (use with -quick for a fast pass)")
		baseMs    = flag.Float64("bench-baseline-ms", 0, "earlier revision's sequential wall time in ms; with -bench, speedup is computed against it")
		baseLabel = flag.String("bench-baseline-label", "", "label describing the -bench-baseline-ms revision")
	)
	flag.Parse()

	exps := core.Experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-6s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp != "" {
		e, err := core.ExperimentByID(strings.ToUpper(*exp))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		exps = []*core.Experiment{e}
	}

	if *benchOut != "" {
		b, err := runner.BenchSuite(exps, runner.Options{Quick: *quick, Workers: *parallel}, *label)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *baseMs > 0 {
			b.SetBaseline(*baseLabel, *baseMs)
		}
		if err := b.Save(*benchOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%d experiments: sequential %.1f ms, parallel %.1f ms (%d workers)\n",
			len(b.Experiments), b.SequentialMs, b.ParallelMs, b.Workers)
		if b.BaselineSequentialMs > 0 {
			fmt.Printf("speedup vs baseline %q (%.1f ms): %.2fx\n", b.BaselineLabel, b.BaselineSequentialMs, b.Speedup)
		} else {
			fmt.Printf("parallel speedup: %.2fx\n", b.Speedup)
		}
		fmt.Printf("bench report saved to %s\n", *benchOut)
		return
	}

	cells := runner.Run(exps, runner.Options{Quick: *quick, Workers: *parallel})
	if err := runner.FirstError(cells); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	set := &results.Set{Label: *label}
	for i, e := range exps {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		fmt.Printf("paper: %s\n\n", e.PaperClaim)
		rep := cells[i].Report
		for _, t := range rep.Tables {
			t.Render(os.Stdout)
			fmt.Println()
		}
		for _, g := range rep.Groups {
			if *csv {
				fmt.Printf("# %s\n", g.Title)
				g.RenderCSV(os.Stdout)
				fmt.Println()
				continue
			}
			t := groupTable(g)
			t.Render(os.Stdout)
			fmt.Println()
			if *chart {
				c := table.NewChart(g.Title, g.Series[0].XLabel, g.Series[0].YLabel)
				for _, s := range g.Series {
					xs, ys := s.XY()
					c.Add(s.Name, xs, ys)
				}
				c.Render(os.Stdout, 72, 16)
				fmt.Println()
			}
		}
		for _, n := range rep.Notes {
			fmt.Printf("note: %s\n", n)
		}
		fmt.Println()
		set.Experiments = append(set.Experiments, results.FromReport(e.ID, rep))
	}

	if *jsonOut != "" {
		if err := results.Save(*jsonOut, set); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("results saved to %s\n", *jsonOut)
	}
	if *compare != "" {
		base, err := results.Load(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		diffs := results.Compare(base, set, *tol)
		results.Render(os.Stdout, diffs, *tol)
		if len(diffs) > 0 {
			os.Exit(2)
		}
	}
}

// groupTable renders a series group as a wide table: the x column plus one
// column per series, rows being the union of x values.
func groupTable(g *bench.Group) *table.Table {
	headers := []string{g.Series[0].XLabel}
	for _, s := range g.Series {
		headers = append(headers, s.Name)
	}
	t := table.New(g.Title+" ("+g.Series[0].YLabel+")", headers...)
	xset := map[float64]bool{}
	for _, s := range g.Series {
		for _, p := range s.Points {
			xset[p.X] = true
		}
	}
	xs := make([]float64, 0, len(xset))
	for x := range xset {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	for _, x := range xs {
		row := []interface{}{x}
		for _, s := range g.Series {
			if y, ok := s.At(x); ok {
				row = append(row, y)
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	return t
}
