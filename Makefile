# VIBe build and verification targets. `make check` is the gate every
# change must pass: it race-checks the parallel runner and the shared
# metrics collector in addition to the regular suite, since bugs there
# would silently corrupt assembled reports rather than fail loudly.

GO ?= go

.PHONY: all build vet test race chaos failover-smoke vibed-smoke check cover bench bench-smoke bench-sim quick clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/runner/... ./internal/metrics/... ./internal/trace/... ./internal/serve/...

# Seeded chaos soak: run CHAOS_PLANS random fault plans against the VIA
# stack under the race detector — the crossbar soak (TestChaosSoak) plus
# the routed-topology soak (TestChaosSoakRouted: fat-tree/dragonfly/torus
# fabrics under topology-aware plans that also kill switches and
# inter-switch links) — plus the span-accounting integrity sweep (spans
# must never leak or double-close under faults). Every wait in the soak is
# bounded, so a hang is a simulation deadlock and fails the run; the
# timeout bounds the wall clock regardless.
CHAOS_PLANS ?= 200
chaos:
	VIBE_CHAOS_PLANS=$(CHAOS_PLANS) $(GO) test -race -run 'TestChaosSoak|TestChaosSoakRouted|TestSpanIntegrityUnderFaults' -timeout 10m ./internal/via/

# Failover smoke: rerun the XFAILOVER spine-outage experiment in quick
# mode and require byte-identical results against the committed baseline
# (-tol 0), with the trace and virtual-time profile written alongside for
# CI artifact upload. A diff here means failover routing, the element
# oracle, or the recovery path changed behavior.
failover-smoke: build
	mkdir -p artifacts
	$(GO) run ./cmd/vibe-report -quick -exp XFAILOVER \
	  -trace-out artifacts/xfailover_trace.json \
	  -profile-out artifacts/xfailover_profile.folded \
	  -compare internal/results/testdata/baseline-xfailover-quick.json -tol 0 \
	  > artifacts/xfailover_report.txt
	tail -n 30 artifacts/xfailover_report.txt

# Daemon smoke: boot the vibed service on a random port, submit the full
# quick registry over HTTP, follow the SSE stream to completion, scrape
# /metrics (daemon gauges plus the span histogram families), download the
# result set and diff it against the committed quick baseline at -tol 0,
# then resubmit identically and require a byte-identical cache hit. The
# daemon binary is built first so a cmd/vibed compile break fails here
# too; artifacts land in artifacts/ for CI upload.
vibed-smoke: build
	mkdir -p artifacts
	VIBED_SMOKE_ARTIFACTS=$(CURDIR)/artifacts \
	  $(GO) test -run TestVibedSmoke -count=1 -v ./internal/serve/

check: vet build test race

# Coverage over every package, with the per-package summary printed and
# the profile left in cover.out for `go tool cover -html=cover.out`.
cover:
	$(GO) test -coverprofile=cover.out -covermode=atomic ./...
	$(GO) tool cover -func=cover.out | tail -1

# Time the quick-mode registry (sequential vs parallel) and write
# BENCH_suite.json.
bench: build
	$(GO) run ./cmd/vibe-report -quick -bench BENCH_suite.json

# CI bench smoke: rerun the quick bench to bench_smoke.json and fail if
# the dispatch speedup (actor vs goroutine process model — a same-machine
# ratio, so comparable across hosts) regressed more than 20% against the
# committed BENCH_suite.json. Also runs the engine microbenchmarks in
# short mode (yield, actor step, schedule) so their ns/op ride along in
# the uploaded artifact; absolute times are machine-dependent and are
# reported, not gated.
bench-smoke: build
	$(GO) run ./cmd/vibe-report -quick -bench bench_smoke.json -bench-gate BENCH_suite.json
	$(GO) test -bench . -benchmem -benchtime 1000x -run '^$$' ./internal/sim/ | tee bench_sim.txt

# Microbenchmarks for the simulation engine hot paths.
bench-sim:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/sim/

# Smoke-run the full registry in quick mode.
quick: build
	$(GO) run ./cmd/vibe -bench suite -quick

clean:
	$(GO) clean ./...
	rm -f vibe vibe-report
