module vibe

go 1.22
